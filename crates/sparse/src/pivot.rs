//! Static pivoting: making a matrix LU-factorizable without runtime
//! pivoting.
//!
//! The paper's numeric kernel (Algorithm 2) performs no pivoting, which is
//! the GLU-family convention: stability is handled during pre-processing.
//! Two facilities are provided:
//!
//! * [`max_transversal`] — a maximum-matching row permutation that brings a
//!   structurally nonzero entry onto every diagonal position when one
//!   exists (the role MC64 plays in production solvers), and
//! * [`repair_diagonal`] — the paper's own Table 4 fallback: "we replaced
//!   their 0 diagonal elements with a non-zero number (1000) to make them
//!   factorizable".

use crate::{convert, Coo, Csr, Idx, Permutation, SparseError, Val};

/// Finds a row permutation placing a structural nonzero on every diagonal.
///
/// Uses the classical augmenting-path maximum bipartite matching
/// (Hopcroft–Karp would be asymptotically better; the simple version is
/// ample for pre-processing at this workspace's scales). Returns the row
/// permutation `p` such that `permute_csr(a, p, identity)` has a full
/// structural diagonal, or an error naming an unmatched column if the
/// matrix is structurally singular.
pub fn max_transversal(a: &Csr) -> Result<Permutation, SparseError> {
    let n = a.n_rows();
    if n != a.n_cols() {
        return Err(SparseError::NotSquare {
            n_rows: n,
            n_cols: a.n_cols(),
        });
    }
    // match_col[j] = row matched to column j; match_row[i] = column matched to row i.
    let mut match_col = vec![usize::MAX; n];
    let mut match_row = vec![usize::MAX; n];
    let mut stamp = vec![usize::MAX; n];

    fn augment(
        a: &Csr,
        i: usize,
        round: usize,
        stamp: &mut [usize],
        match_row: &mut [usize],
        match_col: &mut [usize],
    ) -> bool {
        for &j in a.row_cols(i) {
            let j = j as usize;
            if stamp[j] == round {
                continue;
            }
            stamp[j] = round;
            if match_col[j] == usize::MAX
                || augment(a, match_col[j], round, stamp, match_row, match_col)
            {
                match_col[j] = i;
                match_row[i] = j;
                return true;
            }
        }
        false
    }

    for i in 0..n {
        // Cheap pass: claim the diagonal when free, preferring identity.
        if match_row[i] == usize::MAX
            && match_col.get(i).is_some_and(|&m| m == usize::MAX)
            && a.get(i, i).is_some()
        {
            match_col[i] = i;
            match_row[i] = i;
        }
    }
    for i in 0..n {
        if match_row[i] == usize::MAX
            && !augment(a, i, i, &mut stamp, &mut match_row, &mut match_col)
        {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
    }

    // Row i carries the entry for column match_row[i]; moving row i to
    // position match_row[i] puts that entry on the diagonal.
    Permutation::from_forward(match_row.iter().map(|&j| j as Idx).collect())
}

/// Inserts `value` at every structurally missing diagonal position and
/// returns the repaired matrix together with the number of insertions.
///
/// This reproduces the paper's Table 4 treatment of the huge mesh matrices,
/// which "happen not to be LU-factorizable", with `value = 1000`.
pub fn repair_diagonal(a: &Csr, value: Val) -> (Csr, usize) {
    let n = a.n_rows().min(a.n_cols());
    let mut missing = Vec::new();
    for i in 0..n {
        if a.get(i, i).is_none() {
            missing.push(i);
        }
    }
    if missing.is_empty() {
        return (a.clone(), 0);
    }
    let mut coo = Coo::with_capacity(a.n_rows(), a.n_cols(), a.nnz() + missing.len());
    for i in 0..a.n_rows() {
        for (j, v) in a.row_iter(i) {
            coo.push(i, j, v);
        }
    }
    for &i in &missing {
        coo.push(i, i, value);
    }
    (convert::coo_to_csr(&coo), missing.len())
}

/// Replaces numerically zero (but structurally present) diagonal entries
/// with `value`; returns the count replaced.
pub fn replace_zero_diagonal(a: &mut Csr, value: Val) -> usize {
    let n = a.n_rows().min(a.n_cols());
    let mut replaced = 0;
    for i in 0..n {
        let start = a.row_ptr[i];
        if let Ok(k) = a.row_cols(i).binary_search(&(i as Idx)) {
            if a.vals[start + k] == 0.0 {
                a.vals[start + k] = value;
                replaced += 1;
            }
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::perm::permute_csr;

    #[test]
    fn transversal_fixes_permuted_identity() {
        // Anti-diagonal matrix: rows must be reversed.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 2, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 0, 1.0);
        let a = coo_to_csr(&coo);
        assert!(!a.has_full_diagonal());
        let p = max_transversal(&a).expect("structurally nonsingular");
        let b = permute_csr(&a, &p, &Permutation::identity(3));
        assert!(b.has_full_diagonal());
    }

    #[test]
    fn transversal_prefers_existing_diagonal() {
        let a = Csr::identity(4);
        let p = max_transversal(&a).expect("identity matches itself");
        assert_eq!(p, Permutation::identity(4));
    }

    #[test]
    fn transversal_detects_structural_singularity() {
        // Column 1 empty -> no perfect matching.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo_to_csr(&coo);
        assert!(max_transversal(&a).is_err());
    }

    #[test]
    fn transversal_needs_augmenting_path() {
        // Row 0 can go to cols {0,1}, row 1 only to col 0: matching must
        // push row 0 off column 0.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo_to_csr(&coo);
        let p = max_transversal(&a).expect("matchable");
        let b = permute_csr(&a, &p, &Permutation::identity(2));
        assert!(b.has_full_diagonal());
    }

    #[test]
    fn repair_diagonal_inserts_value() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 1, 3.0);
        let a = coo_to_csr(&coo);
        let (b, inserted) = repair_diagonal(&a, 1000.0);
        assert_eq!(inserted, 2);
        assert!(b.has_full_diagonal());
        assert_eq!(b.get(1, 1), Some(1000.0));
        assert_eq!(b.get(2, 2), Some(1000.0));
        assert_eq!(b.get(0, 0), Some(1.0));
    }

    #[test]
    fn repair_diagonal_noop_when_full() {
        let a = Csr::identity(3);
        let (b, inserted) = repair_diagonal(&a, 1000.0);
        assert_eq!(inserted, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn replace_zero_diagonal_only_touches_zeros() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 0.0);
        coo.push(1, 1, 5.0);
        let mut a = coo_to_csr(&coo);
        let replaced = replace_zero_diagonal(&mut a, 1000.0);
        assert_eq!(replaced, 1);
        assert_eq!(a.get(0, 0), Some(1000.0));
        assert_eq!(a.get(1, 1), Some(5.0));
    }
}
