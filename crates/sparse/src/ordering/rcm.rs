//! Reverse Cuthill–McKee ordering.

use super::symmetrized_adjacency;
use crate::{Csr, Idx};

/// Computes the reverse Cuthill–McKee ordering of `A + Aᵀ`.
///
/// Returns old indices in new sequence (`order[k]` = old index placed at new
/// position `k`). Disconnected components are each started from a
/// pseudo-peripheral vertex found by repeated BFS.
pub fn rcm_order(a: &Csr) -> Vec<Idx> {
    let n = a.n_rows();
    let (ptr, adj) = symmetrized_adjacency(a);
    let degree = |u: usize| ptr[u + 1] - ptr[u];

    let mut visited = vec![false; n];
    let mut order: Vec<Idx> = Vec::with_capacity(n);
    let mut frontier: Vec<Idx> = Vec::new();
    let mut next: Vec<Idx> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(start, &ptr, &adj, &visited);
        visited[root] = true;
        let component_begin = order.len();
        order.push(root as Idx);
        frontier.clear();
        frontier.push(root as Idx);
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                let u = u as usize;
                // Gather unvisited neighbours sorted by ascending degree,
                // the Cuthill–McKee tie-break.
                let begin = next.len();
                for &v in &adj[ptr[u]..ptr[u + 1]] {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        next.push(v);
                    }
                }
                next[begin..].sort_unstable_by_key(|&v| degree(v as usize));
            }
            order.extend_from_slice(&next);
            std::mem::swap(&mut frontier, &mut next);
        }
        // Reverse within the component (the "reverse" in RCM).
        order[component_begin..].reverse();
    }
    order
}

/// Finds a pseudo-peripheral vertex of the component containing `start`
/// by alternating BFS from the farthest minimal-degree vertex.
fn pseudo_peripheral(start: usize, ptr: &[usize], adj: &[Idx], visited: &[bool]) -> usize {
    let n = visited.len();
    let mut root = start;
    let mut last_ecc = 0usize;
    let mut level = vec![usize::MAX; n];
    for _ in 0..4 {
        // BFS computing eccentricity from `root`.
        level.iter_mut().for_each(|l| *l = usize::MAX);
        level[root] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        let mut farthest = root;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[ptr[u]..ptr[u + 1]] {
                let v = v as usize;
                if !visited[v] && level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    if level[v] > level[farthest] {
                        farthest = v;
                    }
                    queue.push_back(v);
                }
            }
        }
        let ecc = level[farthest];
        if ecc <= last_ecc && last_ecc > 0 {
            break;
        }
        last_ecc = ecc;
        // Restart from the farthest vertex of minimal degree at that level.
        let min_deg_far = (0..n)
            .filter(|&v| level[v] == ecc)
            .min_by_key(|&v| ptr[v + 1] - ptr[v])
            .unwrap_or(farthest);
        root = min_deg_far;
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::{Coo, Permutation};

    fn path_graph(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo_to_csr(&coo)
    }

    fn bandwidth(a: &Csr) -> usize {
        (0..a.n_rows())
            .flat_map(|i| a.row_cols(i).iter().map(move |&j| i.abs_diff(j as usize)))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = path_graph(10);
        let order = rcm_order(&a);
        assert!(Permutation::from_order(&order).is_ok());
    }

    #[test]
    fn rcm_keeps_path_bandwidth_one() {
        let a = path_graph(16);
        let order = rcm_order(&a);
        let p = Permutation::from_order(&order).expect("valid");
        let b = crate::perm::permute_csr(&a, &p, &p);
        assert_eq!(bandwidth(&b), 1);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        // Shuffle a path graph badly, then check RCM restores bandwidth 1.
        let a = path_graph(32);
        let shuffle =
            Permutation::from_forward((0..32).map(|i| ((i * 17) % 32) as Idx).collect::<Vec<_>>())
                .expect("17 coprime to 32");
        let shuffled = crate::perm::permute_csr(&a, &shuffle, &shuffle);
        assert!(bandwidth(&shuffled) > 1);
        let p = Permutation::from_order(&rcm_order(&shuffled)).expect("valid");
        let restored = crate::perm::permute_csr(&shuffled, &p, &p);
        assert_eq!(bandwidth(&restored), 1);
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let mut coo = Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0);
        }
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        let a = coo_to_csr(&coo);
        let order = rcm_order(&a);
        assert!(Permutation::from_order(&order).is_ok());
        assert_eq!(order.len(), 4);
    }
}
