//! Approximate minimum degree (AMD) ordering.
//!
//! The practical fill-reducing ordering for circuit-style matrices (the
//! exact greedy in [`super::mindeg`] is quadratic-ish and only suitable as
//! a small-case oracle). This is a simplified Amestoy–Davis–Duff scheme on
//! the quotient graph:
//!
//! * eliminated pivots become **elements** whose member list stands for
//!   the clique their elimination would create (never materialised),
//! * a variable's degree is approximated by
//!   `|A(v)| + Σ_{e ∈ E(v)} (|L_e| − 1)` (an upper bound; overlaps
//!   between elements are not subtracted),
//! * elements adjacent to the pivot are **absorbed** into the new element,
//!   and original edges covered by the new element are pruned,
//!
//! which keeps every list shrinking and the whole ordering near
//! `O(nnz · α)` in practice.

use super::symmetrized_adjacency;
use crate::{Csr, Idx};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes an approximate-minimum-degree ordering of `A + Aᵀ`.
///
/// Returns old indices in new sequence.
pub fn amd_order(a: &Csr) -> Vec<Idx> {
    let n = a.n_rows();
    let (ptr, adj) = symmetrized_adjacency(a);

    // Variable adjacency (original edges, pruned as elements cover them).
    let mut avar: Vec<Vec<Idx>> = (0..n).map(|u| adj[ptr[u]..ptr[u + 1]].to_vec()).collect();
    // Elements adjacent to each variable (element id = its pivot's id).
    let mut evar: Vec<Vec<Idx>> = vec![Vec::new(); n];
    // Element member lists and sizes (only for eliminated pivots).
    let mut elem: Vec<Vec<Idx>> = vec![Vec::new(); n];
    let mut esize: Vec<u32> = vec![0; n];

    let mut dead = vec![false; n]; // variable eliminated
    let mut absorbed = vec![false; n]; // element swallowed by a newer one
    let mut degree: Vec<usize> = (0..n).map(|u| ptr[u + 1] - ptr[u]).collect();

    let mut heap: BinaryHeap<Reverse<(usize, Idx)>> =
        (0..n).map(|u| Reverse((degree[u], u as Idx))).collect();

    // Stamp array for set building/pruning.
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;

    let mut order: Vec<Idx> = Vec::with_capacity(n);
    let mut lp: Vec<Idx> = Vec::new();

    while let Some(Reverse((d, p))) = heap.pop() {
        let pu = p as usize;
        if dead[pu] || d != degree[pu] {
            continue; // stale heap entry
        }
        dead[pu] = true;
        order.push(p);

        // Build L_p = (A(p) ∪ ⋃_{e∈E(p)} L_e) minus dead/self, deduped.
        stamp += 1;
        lp.clear();
        mark[pu] = stamp;
        for &u in &avar[pu] {
            let uu = u as usize;
            if !dead[uu] && mark[uu] != stamp {
                mark[uu] = stamp;
                lp.push(u);
            }
        }
        let adjacent_elems = std::mem::take(&mut evar[pu]);
        for &e in &adjacent_elems {
            let e = e as usize;
            if absorbed[e] {
                continue;
            }
            absorbed[e] = true; // e ⊆ L_p ∪ {p}: swallowed
            for &u in &std::mem::take(&mut elem[e]) {
                let uu = u as usize;
                if !dead[uu] && mark[uu] != stamp {
                    mark[uu] = stamp;
                    lp.push(u);
                }
            }
        }
        avar[pu] = Vec::new();

        // Register the new element.
        elem[pu] = lp.clone();
        esize[pu] = lp.len() as u32;

        // Update every member: prune covered original edges and dead
        // elements, attach the new element, refresh the degree bound.
        for &v in &lp {
            let vu = v as usize;
            avar[vu].retain(|&u| {
                let uu = u as usize;
                !dead[uu] && mark[uu] != stamp
            });
            evar[vu].retain(|&e| !absorbed[e as usize]);
            evar[vu].push(p);
            let dnew = avar[vu].len()
                + evar[vu]
                    .iter()
                    .map(|&e| esize[e as usize].saturating_sub(1) as usize)
                    .sum::<usize>();
            let dnew = dnew.min(n - order.len()); // cannot exceed live vars
            degree[vu] = dnew;
            heap.push(Reverse((dnew, v)));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::ordering::mindeg::min_degree_order;
    use crate::perm::permute_csr;
    use crate::{Coo, Permutation};

    fn fill_count(a: &Csr, order: &[Idx]) -> usize {
        // Symbolic symmetric elimination fill of the permuted pattern.
        let p = Permutation::from_order(order).expect("valid order");
        let b = permute_csr(a, &p, &p);
        let n = b.n_rows();
        let mut rows: Vec<std::collections::BTreeSet<usize>> = (0..n)
            .map(|i| b.row_cols(i).iter().map(|&c| c as usize).collect())
            .collect();
        let mut fill = 0usize;
        for k in 0..n {
            let later: Vec<usize> = rows[k].iter().copied().filter(|&j| j > k).collect();
            for (ai, &i) in later.iter().enumerate() {
                for &j in &later[ai + 1..] {
                    if rows[i].insert(j) {
                        fill += 1;
                    }
                    if rows[j].insert(i) {
                        fill += 1;
                    }
                }
            }
        }
        fill
    }

    #[test]
    fn produces_valid_permutation() {
        let a = crate::gen::random::random_dominant(200, 4.0, 7);
        let order = amd_order(&a);
        assert!(Permutation::from_order(&order).is_ok());
        assert_eq!(order.len(), 200);
    }

    #[test]
    fn arrow_matrix_zero_fill() {
        let n = 16;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
        }
        for i in 1..n {
            coo.push(0, i, 1.0);
            coo.push(i, 0, 1.0);
        }
        let a = coo_to_csr(&coo);
        let order = amd_order(&a);
        assert_eq!(fill_count(&a, &order), 0, "AMD must order the hub last");
    }

    #[test]
    fn close_to_exact_min_degree_on_small_graphs() {
        // AMD's approximation should stay within a small factor of the
        // exact greedy on small random graphs.
        for seed in 0..4 {
            let a = crate::gen::random::random_dominant(60, 3.0, seed);
            let exact = fill_count(&a, &min_degree_order(&a));
            let approx = fill_count(&a, &amd_order(&a));
            assert!(
                approx <= exact.max(8) * 3,
                "seed {seed}: AMD fill {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn beats_natural_order_on_circuit_graph() {
        let a = crate::gen::circuit::circuit(&crate::gen::circuit::CircuitParams {
            n: 300,
            nnz_per_row: 6.0,
            ..Default::default()
        });
        let natural: Vec<Idx> = (0..300).collect();
        let nat_fill = fill_count(&a, &natural);
        let amd_fill = fill_count(&a, &amd_order(&a));
        assert!(
            amd_fill < nat_fill,
            "AMD fill {amd_fill} should beat natural {nat_fill} on circuits"
        );
    }

    #[test]
    fn fast_on_hub_heavy_graphs() {
        // The exact greedy takes minutes at this size; AMD must be quick.
        let a = crate::gen::circuit::circuit(&crate::gen::circuit::CircuitParams {
            n: 4000,
            nnz_per_row: 9.0,
            ..Default::default()
        });
        let t = std::time::Instant::now();
        let order = amd_order(&a);
        assert!(Permutation::from_order(&order).is_ok());
        assert!(
            t.elapsed() < std::time::Duration::from_secs(5),
            "AMD too slow: {:?}",
            t.elapsed()
        );
    }
}
