//! Minimum-degree ordering on the symmetrized pattern.
//!
//! A quotient-graph-free implementation of the classical minimum-degree
//! heuristic: repeatedly eliminate a vertex of minimal current degree and
//! connect its remaining neighbours into a clique. This is the textbook
//! algorithm (the ancestor of AMD); it is O(fill) in the worst case, which
//! is fine at this workspace's matrix scales and is only used in the
//! pre-processing step the paper inherits from prior work.

use super::symmetrized_adjacency;
use crate::{Csr, Idx};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Computes a minimum-degree ordering of `A + Aᵀ`.
///
/// Returns old indices in new sequence.
pub fn min_degree_order(a: &Csr) -> Vec<Idx> {
    let n = a.n_rows();
    let (ptr, adj) = symmetrized_adjacency(a);

    // Mutable adjacency as ordered sets so clique insertion stays cheap to
    // deduplicate. BTreeSet keeps neighbour scans deterministic.
    let mut nbrs: Vec<BTreeSet<Idx>> = (0..n)
        .map(|u| adj[ptr[u]..ptr[u + 1]].iter().copied().collect())
        .collect();

    let mut eliminated = vec![false; n];
    // Lazy-deletion priority queue of (degree, vertex): stale entries are
    // skipped when their recorded degree no longer matches.
    let mut heap: BinaryHeap<Reverse<(usize, Idx)>> =
        (0..n).map(|u| Reverse((nbrs[u].len(), u as Idx))).collect();

    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((deg, u))) = heap.pop() {
        let u = u as usize;
        if eliminated[u] || nbrs[u].len() != deg {
            continue; // stale heap entry
        }
        eliminated[u] = true;
        order.push(u as Idx);

        // Form the elimination clique among surviving neighbours.
        let clique: Vec<Idx> = nbrs[u]
            .iter()
            .copied()
            .filter(|&v| !eliminated[v as usize])
            .collect();
        for (a_pos, &v) in clique.iter().enumerate() {
            let v = v as usize;
            nbrs[v].remove(&(u as Idx));
            for &w in &clique[a_pos + 1..] {
                nbrs[v].insert(w);
                nbrs[w as usize].insert(v as Idx);
            }
        }
        for &v in &clique {
            let v = v as usize;
            heap.push(Reverse((nbrs[v].len(), v as Idx)));
        }
        nbrs[u].clear();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::{Coo, Permutation};

    /// Star graph: centre 0 connected to all others. Minimum degree must
    /// eliminate the leaves (degree 1) before the hub (degree n-1).
    #[test]
    fn star_eliminates_leaves_first() {
        let n = 6;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for leaf in 1..n {
            coo.push(0, leaf, 1.0);
            coo.push(leaf, 0, 1.0);
        }
        let a = coo_to_csr(&coo);
        let order = min_degree_order(&a);
        // Once all but one leaf is gone the hub's degree drops to 1 and it
        // ties with the final leaf, so the hub lands in the last two slots.
        let hub_pos = order.iter().position(|&v| v == 0).expect("hub ordered");
        assert!(
            hub_pos >= n - 2,
            "hub eliminated at {hub_pos}, expected near the end"
        );
    }

    #[test]
    fn produces_valid_permutation() {
        let mut coo = Coo::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0);
        }
        coo.push(0, 4, 1.0);
        coo.push(4, 0, 1.0);
        coo.push(1, 3, 1.0);
        let a = coo_to_csr(&coo);
        let order = min_degree_order(&a);
        assert!(Permutation::from_order(&order).is_ok());
    }

    /// An arrow matrix ordered hub-first produces O(n^2) fill; minimum
    /// degree should order it hub-last, producing zero fill. We verify via
    /// a simple symbolic elimination fill count.
    #[test]
    fn arrow_matrix_gets_zero_fill() {
        let n = 8;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
        }
        for i in 1..n {
            coo.push(0, i, 1.0);
            coo.push(i, 0, 1.0);
        }
        let a = coo_to_csr(&coo);
        let order = min_degree_order(&a);
        let p = Permutation::from_order(&order).expect("valid");
        let b = crate::perm::permute_csr(&a, &p, &p);

        // Count fill of symmetric elimination on the permuted pattern.
        let mut rows: Vec<std::collections::BTreeSet<usize>> = (0..n)
            .map(|i| b.row_cols(i).iter().map(|&c| c as usize).collect())
            .collect();
        let mut fill = 0usize;
        for k in 0..n {
            let later: Vec<usize> = rows[k].iter().copied().filter(|&j| j > k).collect();
            for (ai, &i) in later.iter().enumerate() {
                for &j in &later[ai + 1..] {
                    if rows[i].insert(j) {
                        fill += 1;
                    }
                    if rows[j].insert(i) {
                        fill += 1;
                    }
                }
            }
        }
        assert_eq!(
            fill, 0,
            "min-degree ordering of an arrow matrix is fill-free"
        );
    }
}
