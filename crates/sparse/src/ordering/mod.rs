//! Fill-reducing orderings for the pre-processing step.
//!
//! The paper (Section 2, Figure 2) performs "row and column permutations ...
//! with the goals of reducing fill-ins and improving numeric stability"
//! before symbolic factorization, citing the classical direct-solver
//! literature. Two standard orderings are provided:
//!
//! * [`rcm`] — reverse Cuthill–McKee, a bandwidth-reducing BFS ordering that
//!   works well for the mesh/FEM matrices in Table 2, and
//! * [`mindeg`] — a minimum-degree ordering on the symmetrized pattern
//!   `A + Aᵀ`, the classical fill-reduction heuristic used for the
//!   circuit-style matrices.
//!
//! Both return an *ordering* (old indices in new sequence) that callers turn
//! into a [`crate::Permutation`] via [`crate::Permutation::from_order`] and
//! apply symmetrically to rows and columns so the diagonal stays intact.

pub mod amd;
pub mod mindeg;
pub mod rcm;

pub use amd::amd_order;
pub use mindeg::min_degree_order;
pub use rcm::rcm_order;

use crate::{Csr, Idx};

/// Which ordering pre-processing should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingKind {
    /// Leave the matrix as given.
    Natural,
    /// Reverse Cuthill–McKee (bandwidth reduction).
    #[default]
    Rcm,
    /// Approximate minimum degree on `A + Aᵀ` (fill reduction; the
    /// production choice — see [`amd`]).
    MinDegree,
}

/// Computes the adjacency of the symmetrized pattern `A + Aᵀ` without the
/// diagonal, as a CSR-like structure. Both orderings run on this graph, as
/// is conventional for unsymmetric matrices.
pub fn symmetrized_adjacency(a: &Csr) -> (Vec<usize>, Vec<Idx>) {
    let n = a.n_rows();
    assert_eq!(n, a.n_cols(), "ordering requires a square matrix");
    let mut degree = vec![0usize; n];
    // Count both directions, skipping the diagonal; duplicates (i,j) and
    // (j,i) both present are deduplicated in the fill pass below.
    let mut pairs: Vec<(Idx, Idx)> = Vec::with_capacity(a.nnz() * 2);
    for i in 0..n {
        for &j in a.row_cols(i) {
            let j = j as usize;
            if i != j {
                pairs.push((i as Idx, j as Idx));
                pairs.push((j as Idx, i as Idx));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    for &(u, _) in &pairs {
        degree[u as usize] += 1;
    }
    let mut ptr = vec![0usize; n + 1];
    for i in 0..n {
        ptr[i + 1] = ptr[i] + degree[i];
    }
    let mut adj = vec![0 as Idx; pairs.len()];
    let mut cursor = ptr.clone();
    for (u, v) in pairs {
        adj[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
    }
    (ptr, adj)
}

/// Computes an ordering of the requested kind.
pub fn order(a: &Csr, kind: OrderingKind) -> Vec<Idx> {
    match kind {
        OrderingKind::Natural => (0..a.n_rows() as Idx).collect(),
        OrderingKind::Rcm => rcm_order(a),
        OrderingKind::MinDegree => amd_order(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::Coo;

    #[test]
    fn symmetrized_adjacency_mirrors_edges() {
        // A = [[1, 1, 0], [0, 1, 0], [0, 1, 1]]  (edge 0-1 one way, 2-1 one way)
        let mut coo = Coo::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 1.0);
        }
        coo.push(0, 1, 1.0);
        coo.push(2, 1, 1.0);
        let a = coo_to_csr(&coo);
        let (ptr, adj) = symmetrized_adjacency(&a);
        let neigh = |u: usize| &adj[ptr[u]..ptr[u + 1]];
        assert_eq!(neigh(0), &[1]);
        assert_eq!(neigh(1), &[0, 2]);
        assert_eq!(neigh(2), &[1]);
    }

    #[test]
    fn natural_order_is_identity() {
        let a = Csr::identity(5);
        assert_eq!(order(&a, OrderingKind::Natural), vec![0, 1, 2, 3, 4]);
    }
}
