//! Plain uniform random sparse matrices — the workhorse of unit and
//! property tests, where no particular application structure is wanted.

use super::{assemble_dominant, draw_val, rng};
use crate::{Coo, Csr};
use rand::Rng;

/// Generates an `n x n` diagonally dominant matrix with approximately
/// `nnz_per_row` entries per row, uniformly scattered.
pub fn random_dominant(n: usize, nnz_per_row: f64, seed: u64) -> Csr {
    assert!(n >= 1);
    let mut r = rng(seed);
    let off_target = ((nnz_per_row - 1.0).max(0.0) * n as f64) as usize;
    let mut coo = Coo::with_capacity(n, n, off_target + n);
    for _ in 0..off_target {
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        if i != j {
            coo.push(i, j, draw_val(&mut r));
        }
    }
    assemble_dominant(coo, 1.0)
}

/// Generates a banded diagonally dominant matrix (half-bandwidth `band`),
/// useful when tests need predictable, low fill.
pub fn banded_dominant(n: usize, band: usize, seed: u64) -> Csr {
    let mut r = rng(seed);
    let mut coo = Coo::with_capacity(n, n, n * (2 * band + 1));
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        for j in lo..=hi {
            if i != j && r.gen_bool(0.8) {
                coo.push(i, j, draw_val(&mut r));
            }
        }
    }
    assemble_dominant(coo, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dominant_factorizes() {
        let a = random_dominant(40, 5.0, 9);
        assert!(a.has_full_diagonal());
        assert!(crate::convert::csr_to_dense(&a).lu_no_pivot().is_ok());
    }

    #[test]
    fn banded_respects_bandwidth() {
        let a = banded_dominant(50, 3, 10);
        for i in 0..50 {
            for (j, _) in a.row_iter(i) {
                assert!(i.abs_diff(j) <= 3);
            }
        }
    }

    #[test]
    fn density_tracks_request() {
        let a = random_dominant(5000, 7.0, 11);
        let d = a.density();
        assert!(d > 5.0 && d <= 7.5, "density {d}");
    }

    #[test]
    fn single_row_matrix_works() {
        let a = random_dominant(1, 3.0, 1);
        assert_eq!(a.n_rows(), 1);
        assert_eq!(a.nnz(), 1);
    }
}
