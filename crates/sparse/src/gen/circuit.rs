//! Circuit-netlist-style generator.
//!
//! Post-layout circuit matrices (the pre2 / onetone / rajat family the
//! paper's motivation centres on) are unsymmetric, have a heavy-tailed
//! degree distribution (power/ground rails touch many nodes, most nodes
//! touch a handful), and strong locality (devices connect nearby nodes).
//! This generator reproduces those traits with three edge classes:
//! local couplings, preferential-attachment "rail" edges, and a sprinkle of
//! long-range feedback edges that breaks symmetry.

use super::{assemble_dominant, draw_val, rng};
use crate::{Coo, Csr};
use rand::Rng;

/// Parameters of the circuit generator.
#[derive(Debug, Clone)]
pub struct CircuitParams {
    /// Matrix dimension.
    pub n: usize,
    /// Target average nonzeros per row (including the diagonal).
    pub nnz_per_row: f64,
    /// Fraction of off-diagonal edges drawn as rail (hub) connections.
    pub rail_fraction: f64,
    /// Number of hub (rail) nodes.
    pub rails: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams {
            n: 1024,
            nnz_per_row: 8.0,
            rail_fraction: 0.15,
            rails: 4,
            seed: 0xC1C,
        }
    }
}

/// Generates a circuit-style diagonally dominant matrix.
pub fn circuit(params: &CircuitParams) -> Csr {
    let CircuitParams {
        n,
        nnz_per_row,
        rail_fraction,
        rails,
        seed,
    } = *params;
    assert!(n >= 2, "circuit generator needs n >= 2");
    let mut r = rng(seed);
    // One diagonal per row is implied; budget the rest as off-diagonals.
    let off_target = ((nnz_per_row - 1.0).max(0.5) * n as f64) as usize;
    let n_rail = (off_target as f64 * rail_fraction) as usize;
    let n_local = off_target - n_rail;
    let rails = rails.max(1).min(n);

    let mut coo = Coo::with_capacity(n, n, off_target + n);
    // Local couplings: node i to a node within a window, asymmetric.
    // Each draw emits ~1.7 entries (one always, one with p=0.7), so divide
    // the budget accordingly; rail draws emit 2.
    let window = (n / 64).max(2);
    let n_local = (n_local as f64 / 1.7) as usize;
    let n_rail = n_rail / 2;
    for _ in 0..n_local {
        let i = r.gen_range(0..n);
        let lo = i.saturating_sub(window);
        let hi = (i + window).min(n - 1);
        let j = r.gen_range(lo..=hi);
        if i != j {
            coo.push(i, j, draw_val(&mut r));
            // Devices are mostly (not always) bidirectional couplings.
            if r.gen_bool(0.7) {
                coo.push(j, i, draw_val(&mut r));
            }
        }
    }
    // Rail edges: connect random nodes to one of the hub nodes (low ids,
    // mimicking supply nets that are eliminated early).
    for _ in 0..n_rail {
        let i = r.gen_range(0..n);
        let hub = r.gen_range(0..rails);
        if i != hub {
            coo.push(i, hub, draw_val(&mut r));
            coo.push(hub, i, draw_val(&mut r));
        }
    }
    // Long-range feedback (controlled sources): strictly one-directional.
    // Kept rare — a sprinkle of global edges breaks symmetry without
    // collapsing the elimination ordering's separators.
    for _ in 0..(off_target / 100).max(1) {
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        if i != j {
            coo.push(i, j, draw_val(&mut r));
        }
    }
    assemble_dominant(coo, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_close_to_target() {
        let p = CircuitParams {
            n: 2000,
            nnz_per_row: 9.0,
            ..Default::default()
        };
        let a = circuit(&p);
        let d = a.density();
        // Duplicates get merged so density can undershoot; it must be in
        // the right ballpark and never overshoot by much.
        assert!(d > 5.0 && d < 11.0, "density {d} out of band");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = CircuitParams {
            n: 300,
            ..Default::default()
        };
        assert_eq!(circuit(&p), circuit(&p));
        let q = CircuitParams { seed: 99, ..p };
        assert_ne!(circuit(&p), circuit(&q));
    }

    #[test]
    fn unsymmetric_pattern() {
        let a = circuit(&CircuitParams {
            n: 500,
            ..Default::default()
        });
        let mut asym = 0;
        for i in 0..a.n_rows() {
            for (j, _) in a.row_iter(i) {
                if a.get(j, i).is_none() {
                    asym += 1;
                }
            }
        }
        assert!(
            asym > 0,
            "circuit matrices must be structurally unsymmetric"
        );
    }

    #[test]
    fn diagonally_dominant_and_factorizable() {
        let a = circuit(&CircuitParams {
            n: 64,
            nnz_per_row: 6.0,
            ..Default::default()
        });
        assert!(a.has_full_diagonal());
        let d = crate::convert::csr_to_dense(&a);
        assert!(d.lu_no_pivot().is_ok());
    }

    #[test]
    fn hubs_have_high_degree() {
        let a = circuit(&CircuitParams {
            n: 2000,
            nnz_per_row: 8.0,
            ..Default::default()
        });
        let hub_deg = a.row_cols(0).len();
        let mid_deg = a.row_cols(1000).len();
        assert!(
            hub_deg > 3 * mid_deg,
            "hub degree {hub_deg} vs mid {mid_deg}"
        );
    }
}
