//! FEM-mesh-style generator.
//!
//! The dense half of the paper's Table 2 (inline_1, crankseg_*, bmw*,
//! s3dk*, windtunnel_evap3d, audikw_1) are 3D structural-mechanics FEM
//! matrices: block patterns from multiple degrees of freedom per mesh node,
//! near-symmetric, with `nnz/n` from ~27 up to ~111. This generator builds
//! a 3D grid of nodes with `dof` unknowns each and couples all DOFs of
//! neighbouring nodes, which reproduces exactly that block-stencil shape.

use super::{assemble_dominant, draw_val, rng};
use crate::{Coo, Csr};
use rand::Rng;

/// Parameters of the FEM-style generator.
#[derive(Debug, Clone)]
pub struct MeshParams {
    /// Grid extent in x, y, z (nodes). `n = nx * ny * nz * dof`.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// Degrees of freedom per node; raises `nnz/n` quadratically.
    pub dof: usize,
    /// Keep-probability of each neighbour coupling block (thins the
    /// stencil to hit a target density).
    pub keep: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MeshParams {
    /// Chooses grid extents and DOF to approximate a target `n` and
    /// `nnz/n`. The 7-point stencil with `dof` DOFs per node yields
    /// roughly `7 * dof` entries per row before thinning.
    pub fn for_target(n_target: usize, nnz_per_row: f64, seed: u64) -> MeshParams {
        // Choose dof so a full 7-point block stencil overshoots the target
        // density, then thin with `keep`.
        let dof = ((nnz_per_row / 7.0).ceil() as usize).clamp(1, 24);
        let nodes = (n_target / dof).max(8);
        let side = (nodes as f64).powf(1.0 / 3.0).round() as usize;
        let side = side.max(2);
        let full = 7.0 * dof as f64;
        let keep = (nnz_per_row / full).clamp(0.05, 1.0);
        MeshParams {
            nx: side,
            ny: side,
            nz: (nodes / (side * side)).max(1),
            dof,
            keep,
            seed,
        }
    }

    /// Total matrix dimension.
    pub fn n(&self) -> usize {
        self.nx * self.ny * self.nz * self.dof
    }
}

/// Generates a 3D FEM-style near-symmetric diagonally dominant matrix.
pub fn mesh(params: &MeshParams) -> Csr {
    let MeshParams {
        nx,
        ny,
        nz,
        dof,
        keep,
        seed,
    } = *params;
    let n = params.n();
    let mut r = rng(seed);
    let node = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut coo = Coo::with_capacity(n, n, (n as f64 * 7.0 * dof as f64 * keep) as usize);

    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = node(x, y, z);
                // Intra-node block: couple all DOFs of this node.
                for a in 0..dof {
                    for b in 0..dof {
                        if a != b && r.gen_bool(keep.min(1.0)) {
                            coo.push(u * dof + a, u * dof + b, draw_val(&mut r));
                        }
                    }
                }
                // 7-point stencil neighbour blocks (forward edges; the
                // value draw differs per direction so the matrix is only
                // *structurally* near-symmetric, like real FEM stiffness
                // matrices after constraint elimination).
                let mut neighbours = Vec::with_capacity(3);
                if x + 1 < nx {
                    neighbours.push(node(x + 1, y, z));
                }
                if y + 1 < ny {
                    neighbours.push(node(x, y + 1, z));
                }
                if z + 1 < nz {
                    neighbours.push(node(x, y, z + 1));
                }
                for v in neighbours {
                    for a in 0..dof {
                        for b in 0..dof {
                            if r.gen_bool(keep) {
                                coo.push(u * dof + a, v * dof + b, draw_val(&mut r));
                                coo.push(v * dof + b, u * dof + a, draw_val(&mut r));
                            }
                        }
                    }
                }
            }
        }
    }
    assemble_dominant(coo, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_target_hits_dimension_ballpark() {
        let p = MeshParams::for_target(4000, 37.0, 1);
        let n = p.n();
        assert!((2000..=8000).contains(&n), "n={n} too far from 4000");
    }

    #[test]
    fn density_tracks_request() {
        let p = MeshParams::for_target(3000, 30.0, 2);
        let a = mesh(&p);
        let d = a.density();
        assert!(
            d > 12.0 && d < 45.0,
            "density {d} out of band for request 30"
        );
    }

    #[test]
    fn high_dof_gives_high_density() {
        let lo = mesh(&MeshParams::for_target(2000, 8.0, 3));
        let hi = mesh(&MeshParams::for_target(2000, 60.0, 3));
        assert!(hi.density() > 2.0 * lo.density());
    }

    #[test]
    fn factorizable_without_pivoting() {
        let p = MeshParams {
            nx: 3,
            ny: 3,
            nz: 2,
            dof: 2,
            keep: 0.9,
            seed: 5,
        };
        let a = mesh(&p);
        assert!(a.has_full_diagonal());
        let d = crate::convert::csr_to_dense(&a);
        assert!(d.lu_no_pivot().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = MeshParams {
            nx: 4,
            ny: 4,
            nz: 2,
            dof: 2,
            keep: 0.8,
            seed: 11,
        };
        assert_eq!(mesh(&p), mesh(&p));
    }
}
