//! Synthetic matrix generators.
//!
//! The paper evaluates on SuiteSparse matrices (Tables 2 and 4). Those exact
//! inputs are not redistributable inside this repository, so each one gets a
//! *synthetic analog* that preserves the properties the experiments depend
//! on: the dimension `n`, the density `nnz/n` (the variable Figure 4's
//! speedup analysis correlates with), the broad pattern family (circuit
//! netlist vs FEM mesh vs planar graph), and — for Table 4 — structurally
//! deficient diagonals.
//!
//! Generators:
//! * [`circuit`] — unsymmetric, power-law-ish degree netlists (g7jac200sc,
//!   pre2, onetone*, rajat15, bbmat, mixtank, Goodwin, rma10 analogs),
//! * [`mesh`] — near-symmetric multi-DOF FEM stencils (inline_1, crankseg*,
//!   bmw*, apache2, s3dk*, windtunnel, audikw_1 analogs),
//! * [`planar`] — planar triangulation-like graphs with *missing diagonals*
//!   (hugetrace, delaunay_n24, hugebubbles analogs of Table 4),
//! * [`random`] — plain uniform sparsity for tests and property checks,
//! * [`hard`] — deliberately ill-conditioned families (near-singular,
//!   graded, missing-diagonal, sign-alternating) for the robustness
//!   ladder and the chaos suites,
//! * [`suite`] — the named paper suites at a configurable scale.
//!
//! All generators produce diagonally dominant values (except `planar`,
//! which deliberately omits diagonals until repaired) so LU factorization
//! without pivoting succeeds, matching the GLU-family assumption.

pub mod circuit;
pub mod hard;
pub mod mesh;
pub mod planar;
pub mod random;
pub mod suite;

use crate::{convert, Coo, Csr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used by every generator — experiments must be
/// reproducible run to run.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Assembles a COO off-diagonal pattern into a diagonally dominant CSR:
/// duplicates are summed, then each diagonal is set to
/// `sum(|off-diagonal in row|) + bump` so no pivoting is needed.
pub fn assemble_dominant(mut coo: Coo, bump: f64) -> Csr {
    let n = coo.n_rows();
    coo.sum_duplicates();
    let mut row_abs = vec![0.0f64; n];
    for (i, j, v) in coo.iter() {
        if i != j {
            row_abs[i] += v.abs();
        }
    }
    // Drop any existing diagonal entries and re-add dominant ones.
    let mut out = Coo::with_capacity(n, coo.n_cols(), coo.nnz() + n);
    for (i, j, v) in coo.iter() {
        if i != j {
            out.push(i, j, v);
        }
    }
    for (i, &dom) in row_abs.iter().enumerate() {
        out.push(i, i, dom + bump);
    }
    convert::coo_to_csr(&out)
}

/// Draws a nonzero value in `[-1, -0.1] ∪ [0.1, 1]` — bounded away from
/// zero so cancellation cannot produce accidental zero pivots downstream.
pub fn draw_val<R: Rng>(rng: &mut R) -> f64 {
    let mag: f64 = rng.gen_range(0.1..1.0);
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_dominant_is_dominant_and_full_diagonal() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, -0.5);
        coo.push(0, 2, 0.25);
        coo.push(3, 0, 0.9);
        let a = assemble_dominant(coo, 1.0);
        assert!(a.has_full_diagonal());
        assert_eq!(a.get(0, 0), Some(0.75 + 1.0));
        assert_eq!(a.get(1, 1), Some(1.0));
        // Diagonal strictly dominates each row.
        for i in 0..4 {
            let off: f64 = a
                .row_iter(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(i, i).expect("diag") > off);
        }
    }

    #[test]
    fn assemble_dominant_replaces_existing_diagonal() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 99.0);
        coo.push(0, 1, 1.0);
        let a = assemble_dominant(coo, 0.5);
        assert_eq!(a.get(0, 0), Some(1.5));
    }

    #[test]
    fn draw_val_bounded_away_from_zero() {
        let mut r = rng(7);
        for _ in 0..100 {
            let v = draw_val(&mut r);
            assert!(v.abs() >= 0.1 && v.abs() < 1.0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a: u64 = rng(42).gen();
        let b: u64 = rng(42).gen();
        assert_eq!(a, b);
    }
}
