//! The paper's matrix suites, as named synthetic analogs.
//!
//! [`paper_suite`] reproduces Table 2 (the 18 matrices whose symbolic
//! intermediates exceed GPU memory), [`um_suite`] the 7 smallest-`n` of
//! those used for the unified-memory comparison (Figures 5/6, Table 3),
//! [`frontier_pair`] the two matrices of Figures 3/7 (pre2 and audikw_1),
//! and [`large_suite`] the four huge Table 4 matrices.
//!
//! Each entry records the *paper's* `n`/`nnz` and generates an analog at
//! `paper_n / scale` with the same `nnz/n`, per DESIGN.md §2. The GPU
//! profile used alongside a suite must be scaled correspondingly (see
//! `gplu_sim::GpuConfig`): device memory by `scale²` for the symbolic
//! out-of-core experiments (preserving the iteration count `∝ n²/L`) and
//! by `scale` for the numeric-format experiments (preserving the parallel
//! column limit `M = L/(n·4)`).

use super::circuit::{circuit, CircuitParams};
use super::mesh::{mesh, MeshParams};
use super::planar::{planar, PlanarParams};
use crate::Csr;

/// The structural family an analog is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Unsymmetric circuit/netlist-like pattern.
    Circuit,
    /// Near-symmetric multi-DOF FEM stencil.
    Mesh,
    /// Planar triangulation with deficient diagonal (Table 4 family).
    Planar,
}

/// One matrix of a paper suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Full SuiteSparse name from the paper.
    pub name: &'static str,
    /// The paper's abbreviation (Table 2 column "abbr").
    pub abbr: &'static str,
    /// Paper dimension.
    pub paper_n: usize,
    /// Paper nonzero count.
    pub paper_nnz: usize,
    /// Pattern family used for the analog.
    pub family: Family,
}

impl SuiteEntry {
    /// Paper density `nnz/n`.
    pub fn paper_density(&self) -> f64 {
        self.paper_nnz as f64 / self.paper_n as f64
    }

    /// Analog dimension at `scale`, floored at 768 rows — below that the
    /// device's fixed overheads dominate any matrix and the analog stops
    /// exercising the out-of-core machinery meaningfully.
    pub fn analog_n(&self, scale: usize) -> usize {
        (self.paper_n / scale).max(768)
    }

    /// Generates the analog matrix at `scale` (dimension `paper_n/scale`,
    /// density preserved). Deterministic: the seed is derived from the
    /// matrix name.
    pub fn generate(&self, scale: usize) -> Csr {
        let n = self.analog_n(scale);
        let density = self.paper_density();
        let seed = self.name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        match self.family {
            Family::Circuit => circuit(&CircuitParams {
                n,
                nnz_per_row: density,
                rail_fraction: 0.12,
                rails: (n / 256).max(2),
                seed,
            }),
            Family::Mesh => mesh(&MeshParams::for_target(n, density, seed)),
            Family::Planar => planar(&PlanarParams::for_target(n, density, seed)),
        }
    }
}

/// Default scale divisor for the Table 2 suite.
pub const DEFAULT_SCALE: usize = 128;
/// Default scale divisor for the Table 4 (huge) suite.
pub const DEFAULT_LARGE_SCALE: usize = 1024;

/// Table 2: the 18 matrices whose symbolic-factorization intermediates
/// exceed V100 device memory, in the paper's row order.
pub fn paper_suite() -> Vec<SuiteEntry> {
    use Family::*;
    vec![
        SuiteEntry {
            name: "g7jac200sc",
            abbr: "G7",
            paper_n: 59310,
            paper_nnz: 837936,
            family: Circuit,
        },
        SuiteEntry {
            name: "rma10",
            abbr: "RM",
            paper_n: 46835,
            paper_nnz: 2374001,
            family: Mesh,
        },
        SuiteEntry {
            name: "pre2",
            abbr: "PR",
            paper_n: 659033,
            paper_nnz: 5959282,
            family: Circuit,
        },
        SuiteEntry {
            name: "inline_1",
            abbr: "IN",
            paper_n: 503712,
            paper_nnz: 18660027,
            family: Mesh,
        },
        SuiteEntry {
            name: "crankseg_2",
            abbr: "CR2",
            paper_n: 63838,
            paper_nnz: 7106348,
            family: Mesh,
        },
        SuiteEntry {
            name: "bmwcra_1",
            abbr: "BMC",
            paper_n: 148770,
            paper_nnz: 5396386,
            family: Mesh,
        },
        SuiteEntry {
            name: "crankseg_1",
            abbr: "CR1",
            paper_n: 52804,
            paper_nnz: 5333507,
            family: Mesh,
        },
        SuiteEntry {
            name: "bmw7st_1",
            abbr: "BM7",
            paper_n: 141347,
            paper_nnz: 3740507,
            family: Mesh,
        },
        SuiteEntry {
            name: "apache2",
            abbr: "AP",
            paper_n: 715176,
            paper_nnz: 2766523,
            family: Mesh,
        },
        SuiteEntry {
            name: "s3dkq4m2",
            abbr: "S34",
            paper_n: 90449,
            paper_nnz: 2455670,
            family: Mesh,
        },
        SuiteEntry {
            name: "s3dkt3m2",
            abbr: "S33",
            paper_n: 90449,
            paper_nnz: 1921955,
            family: Mesh,
        },
        SuiteEntry {
            name: "onetone2",
            abbr: "OT2",
            paper_n: 36057,
            paper_nnz: 227628,
            family: Circuit,
        },
        SuiteEntry {
            name: "rajat15",
            abbr: "R15",
            paper_n: 37261,
            paper_nnz: 443573,
            family: Circuit,
        },
        SuiteEntry {
            name: "bbmat",
            abbr: "BB",
            paper_n: 38744,
            paper_nnz: 1771722,
            family: Circuit,
        },
        SuiteEntry {
            name: "mixtank_new",
            abbr: "MI",
            paper_n: 29957,
            paper_nnz: 1995041,
            family: Mesh,
        },
        SuiteEntry {
            name: "Goodwin_054",
            abbr: "GO",
            paper_n: 32510,
            paper_nnz: 1030878,
            family: Mesh,
        },
        SuiteEntry {
            name: "onetone1",
            abbr: "OT1",
            paper_n: 36057,
            paper_nnz: 341088,
            family: Circuit,
        },
        SuiteEntry {
            name: "windtunnel_evap3d",
            abbr: "WI",
            paper_n: 40816,
            paper_nnz: 2730600,
            family: Mesh,
        },
    ]
}

/// The 7 matrices of the unified-memory experiments (Figures 5/6, Table 3):
/// the Table 2 entries with the smallest `n` (all below 41,000 rows), in
/// the paper's Table 3 row order.
pub fn um_suite() -> Vec<SuiteEntry> {
    let order = ["OT2", "R15", "BB", "MI", "GO", "OT1", "WI"];
    let all = paper_suite();
    order
        .iter()
        .map(|abbr| {
            all.iter()
                .find(|e| e.abbr == *abbr)
                .expect("um_suite abbreviations are a subset of paper_suite")
                .clone()
        })
        .collect()
}

/// The two matrices of Figures 3 and 7: pre2 and audikw_1 (the latter is
/// not in Table 2; the paper uses it only for the frontier-profile and
/// dynamic-parallelism experiments).
pub fn frontier_pair() -> Vec<SuiteEntry> {
    let pre2 = paper_suite()
        .into_iter()
        .find(|e| e.abbr == "PR")
        .expect("pre2 in suite");
    vec![
        pre2,
        SuiteEntry {
            name: "audikw_1",
            abbr: "AUD",
            paper_n: 943695,
            paper_nnz: 77651847,
            family: Family::Mesh,
        },
    ]
}

/// Table 4: the four huge planar matrices used for the numeric-format
/// experiment, with their paper sizes. These are rank-deficient (missing
/// diagonals) until repaired with value 1000, as in the paper.
pub fn large_suite() -> Vec<SuiteEntry> {
    use Family::Planar;
    vec![
        SuiteEntry {
            name: "hugetrace-00020",
            abbr: "HT20",
            paper_n: 16_002_413,
            paper_nnz: 47_997_626,
            family: Planar,
        },
        SuiteEntry {
            name: "delaunay_n24",
            abbr: "D24",
            paper_n: 16_777_216,
            paper_nnz: 100_663_202,
            family: Planar,
        },
        SuiteEntry {
            name: "hugebubbles-00000",
            abbr: "HB00",
            paper_n: 18_318_143,
            paper_nnz: 54_940_162,
            family: Planar,
        },
        SuiteEntry {
            name: "hugebubbles-00010",
            abbr: "HB10",
            paper_n: 19_458_087,
            paper_nnz: 58_359_528,
            family: Planar,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_18_rows_in_paper_order() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 18);
        assert_eq!(suite[0].abbr, "G7");
        assert_eq!(suite[17].abbr, "WI");
    }

    #[test]
    fn um_suite_matches_paper_selection() {
        let um = um_suite();
        assert_eq!(um.len(), 7);
        assert!(
            um.iter().all(|e| e.paper_n < 41_000),
            "paper: all 7 have fewer than 41k rows"
        );
        assert_eq!(um[0].abbr, "OT2");
        assert_eq!(um[6].abbr, "WI");
    }

    #[test]
    fn densities_match_table2() {
        let suite = paper_suite();
        let g7 = suite.iter().find(|e| e.abbr == "G7").expect("G7 exists");
        assert!((g7.paper_density() - 14.1).abs() < 0.1);
        let cr2 = suite.iter().find(|e| e.abbr == "CR2").expect("CR2 exists");
        assert!((cr2.paper_density() - 111.3).abs() < 0.1);
    }

    #[test]
    fn analogs_generate_with_preserved_density() {
        for entry in [&paper_suite()[11], &paper_suite()[4]] {
            // OT2 (sparse circuit) and CR2 (dense mesh)
            let a = entry.generate(256);
            let want = entry.paper_density();
            let got = a.density();
            assert!(
                got > want * 0.4 && got < want * 1.6,
                "{}: analog density {got:.1} vs paper {want:.1}",
                entry.abbr
            );
        }
    }

    #[test]
    fn analog_dimension_scales() {
        let pr = &paper_suite()[2];
        assert_eq!(pr.analog_n(128), 659033 / 128);
        assert_eq!(pr.analog_n(1 << 30), 768, "floor at 768 rows");
    }

    #[test]
    fn large_suite_is_planar_and_deficient() {
        for e in large_suite() {
            assert_eq!(e.family, Family::Planar);
            let a = e.generate(4096);
            assert!(
                !a.has_full_diagonal(),
                "{} analog must need diagonal repair",
                e.abbr
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let e = &paper_suite()[0];
        assert_eq!(e.generate(512), e.generate(512));
    }
}
