//! Ill-conditioned generators — the adversarial counterpart of the
//! dominant families.
//!
//! Every other generator in this module tree deliberately produces
//! diagonally dominant values so no-pivot LU succeeds (the GLU-family
//! assumption the paper inherits). Real solver traffic is not so polite:
//! circuit matrices arrive with tiny conductances on the diagonal, graded
//! meshes span many orders of magnitude, and netlist extraction sometimes
//! drops diagonal entries entirely. This family reproduces those failure
//! shapes on purpose, to drive the robustness ladder (threshold pivoting,
//! static perturbation, residual gating) through its paces:
//!
//! * [`near_singular`] — dominant everywhere except a sprinkle of rows
//!   whose diagonal is ~1e-13 of the row weight: no-pivot LU divides by
//!   them and the element growth destroys the residual; threshold
//!   pivoting swaps them away.
//! * [`graded`] — two-sided geometric scaling `D_r · A · D_c` with
//!   opposing gradings: entries span `10^decades`, row dominance is gone,
//!   and pivots shrink steadily down the diagonal.
//! * [`zero_diag`] — structurally missing diagonals on a matrix whose
//!   cyclic coupling guarantees a transversal exists, so row exchange
//!   recovers what no-pivot LU rejects outright.
//! * [`sign_alternating`] — circuit-like pattern with alternating-sign
//!   near-unit couplings and weak diagonals: eliminations nearly cancel,
//!   amplifying growth without pivoting.
//!
//! All generators are deterministic in `seed`. None promises
//! well-posedness — a draw can be numerically singular, and downstream
//! must answer with a typed rejection rather than a silently wrong
//! factorization. That contract is exactly what the chaos suite checks.

use super::{draw_val, rng};
use crate::{convert, Coo, Csr};
use rand::Rng;

/// The adversarial families, for suite-style iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardKind {
    /// A few near-zero diagonal rows in an otherwise dominant matrix.
    NearSingular,
    /// Two-sided geometric grading spanning many decades.
    Graded,
    /// Structurally missing diagonal entries.
    ZeroDiag,
    /// Alternating-sign couplings with weak diagonals.
    SignAlternating,
}

impl HardKind {
    /// Every family, in a stable order.
    pub const ALL: [HardKind; 4] = [
        HardKind::NearSingular,
        HardKind::Graded,
        HardKind::ZeroDiag,
        HardKind::SignAlternating,
    ];

    /// Short stable name for reports and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            HardKind::NearSingular => "near_singular",
            HardKind::Graded => "graded",
            HardKind::ZeroDiag => "zero_diag",
            HardKind::SignAlternating => "sign_alternating",
        }
    }

    /// Generates an `n × n` instance of this family.
    pub fn generate(&self, n: usize, seed: u64) -> Csr {
        match self {
            HardKind::NearSingular => near_singular(n, seed),
            HardKind::Graded => graded(n, 8, seed),
            HardKind::ZeroDiag => zero_diag(n, seed),
            HardKind::SignAlternating => sign_alternating(n, seed),
        }
    }
}

/// Off-diagonal skeleton shared by the family: a cyclic chain (so a full
/// transversal always exists), a local band, and a few long-range edges.
fn skeleton(n: usize, seed: u64) -> (Coo, Vec<f64>) {
    let mut r = rng(seed);
    let mut coo = Coo::with_capacity(n, n, 4 * n);
    let mut row_abs = vec![0.0f64; n];
    let push = |coo: &mut Coo, row_abs: &mut Vec<f64>, i: usize, j: usize, v: f64| {
        if i != j {
            coo.push(i, j, v);
            row_abs[i] += v.abs();
        }
    };
    for i in 0..n {
        // Cyclic coupling: row i always reaches column (i+1) mod n.
        let v = draw_val(&mut r);
        push(&mut coo, &mut row_abs, i, (i + 1) % n, v);
        // Local band.
        for _ in 0..2 {
            let off = r.gen_range(1..=4usize);
            let j = (i + n - off) % n;
            push(&mut coo, &mut row_abs, i, j, draw_val(&mut r));
        }
        // Occasional long-range feedback.
        if r.gen_bool(0.25) {
            let j = r.gen_range(0..n);
            push(&mut coo, &mut row_abs, i, j, draw_val(&mut r));
        }
    }
    (coo, row_abs)
}

/// Dominant matrix except for `~n/16` rows whose diagonal is ~1e-13 of
/// the row weight — small enough that dividing by it wrecks the factors,
/// large enough to be structurally present.
pub fn near_singular(n: usize, seed: u64) -> Csr {
    assert!(n >= 4, "near_singular needs n >= 4");
    let (mut coo, row_abs) = skeleton(n, seed);
    let mut r = rng(seed ^ 0x9E37_79B9);
    let weak = (n / 16).max(1);
    let mut is_weak = vec![false; n];
    let mut placed = 0;
    while placed < weak {
        let i = r.gen_range(0..n);
        if !is_weak[i] {
            is_weak[i] = true;
            placed += 1;
        }
    }
    for (i, &dom) in row_abs.iter().enumerate() {
        let d = if is_weak[i] {
            (dom + 1.0) * 1e-13
        } else {
            dom + 1.0
        };
        coo.push(i, i, d);
    }
    convert::coo_to_csr(&coo)
}

/// Two-sided geometric grading: dominant base `A`, returned as
/// `D_r · A · D_c` where the row scaling decays over `decades` orders of
/// magnitude top-to-bottom and the column scaling grows by the same —
/// entries span `10^decades` and row dominance is destroyed.
pub fn graded(n: usize, decades: u32, seed: u64) -> Csr {
    assert!(n >= 2, "graded needs n >= 2");
    let (mut coo, row_abs) = skeleton(n, seed);
    for (i, &dom) in row_abs.iter().enumerate() {
        coo.push(i, i, dom + 1.0);
    }
    let g = decades as f64;
    let scale = |k: usize| 10f64.powf(-g * k as f64 / n as f64);
    let mut out = Coo::with_capacity(n, n, coo.nnz());
    for (i, j, v) in coo.iter() {
        out.push(i, j, v * scale(i) / scale(j));
    }
    convert::coo_to_csr(&out)
}

/// Dominant matrix with `~n/12` diagonal entries structurally removed.
/// The cyclic chain in the skeleton guarantees a transversal exists, so a
/// row permutation (threshold pivoting, or the preprocess transversal)
/// can always restore a usable diagonal.
pub fn zero_diag(n: usize, seed: u64) -> Csr {
    assert!(n >= 4, "zero_diag needs n >= 4");
    let (mut coo, row_abs) = skeleton(n, seed);
    let mut r = rng(seed ^ 0x5DEE_CE66);
    let holes = (n / 12).max(1);
    let mut is_hole = vec![false; n];
    let mut placed = 0;
    while placed < holes {
        let i = r.gen_range(0..n);
        if !is_hole[i] {
            is_hole[i] = true;
            placed += 1;
        }
    }
    for (i, &dom) in row_abs.iter().enumerate() {
        if !is_hole[i] {
            coo.push(i, i, dom + 1.0);
        }
    }
    convert::coo_to_csr(&coo)
}

/// Circuit-like alternating-sign couplings near ±1 with weak diagonals:
/// updates nearly cancel, so no-pivot elimination suffers severe element
/// growth that threshold pivoting suppresses.
pub fn sign_alternating(n: usize, seed: u64) -> Csr {
    assert!(n >= 2, "sign_alternating needs n >= 2");
    let mut r = rng(seed);
    let mut coo = Coo::with_capacity(n, n, 4 * n);
    let mut row_cnt = vec![0usize; n];
    for (i, cnt) in row_cnt.iter_mut().enumerate() {
        let targets = [(i + 1) % n, (i + n - 1) % n, r.gen_range(0..n)];
        for j in targets {
            if i != j {
                // Alternating checkerboard sign, magnitude jittered off
                // exactly 1 so draws are not trivially rank-deficient.
                let sign = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
                let v = sign * (1.0 + 0.01 * r.gen_range(-1.0..1.0f64));
                coo.push(i, j, v);
                *cnt += 1;
            }
        }
    }
    for (i, &cnt) in row_cnt.iter().enumerate() {
        // Weak diagonal: an order of magnitude below the row couplings.
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        coo.push(i, i, sign * 0.1 * cnt.max(1) as f64);
    }
    convert::coo_to_csr(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        for kind in HardKind::ALL {
            let a = kind.generate(64, 7);
            let b = kind.generate(64, 7);
            assert_eq!(a.col_idx, b.col_idx, "{}", kind.name());
            assert_eq!(a.vals, b.vals, "{}", kind.name());
            let c = kind.generate(64, 8);
            assert_ne!(a.vals, c.vals, "{} must vary with seed", kind.name());
        }
    }

    #[test]
    fn near_singular_has_tiny_diagonals() {
        let a = near_singular(96, 3);
        assert!(a.has_full_diagonal());
        let tiny = (0..96)
            .filter(|&i| a.get(i, i).expect("diag").abs() < 1e-9)
            .count();
        assert!(tiny >= 1, "want at least one near-zero diagonal");
        assert!(tiny < 96, "most rows stay dominant");
    }

    #[test]
    fn graded_spans_decades() {
        let a = graded(128, 8, 4);
        let mags: Vec<f64> = a
            .vals
            .iter()
            .map(|v| v.abs())
            .filter(|&m| m > 0.0)
            .collect();
        let max = mags.iter().cloned().fold(0.0f64, f64::max);
        let min = mags.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 1e6,
            "grading must span many decades, got ratio {}",
            max / min
        );
    }

    #[test]
    fn zero_diag_has_structural_holes_but_a_transversal() {
        let a = zero_diag(120, 5);
        assert!(!a.has_full_diagonal());
        let holes = (0..120).filter(|&i| a.get(i, i).is_none()).count();
        assert!((1..=120 / 6).contains(&holes));
        // The cyclic chain guarantees (i, i+1 mod n) exists everywhere.
        for i in 0..120 {
            assert!(a.get(i, (i + 1) % 120).is_some(), "chain edge {i} missing");
        }
    }

    #[test]
    fn sign_alternating_diagonals_are_weak() {
        let a = sign_alternating(80, 6);
        assert!(a.has_full_diagonal());
        for i in 0..80 {
            let d = a.get(i, i).expect("diag").abs();
            let off: f64 = a
                .row_iter(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(d < off, "row {i}: diagonal {d} must be dominated by {off}");
        }
    }
}
