//! Planar-graph-style generator for the Table 4 "huge" matrices.
//!
//! hugetrace, delaunay_n24 and hugebubbles are planar(ish) graph Laplacian
//! patterns with average degree ~3–6 and — critically for the paper — they
//! are "not full rank" with zero diagonals, which the authors repaired by
//! writing 1000 into the diagonal. This generator reproduces both traits:
//! a low-degree neighbour structure from a jittered triangulated grid, and
//! **structurally missing diagonals** on a configurable fraction of rows so
//! [`crate::pivot::repair_diagonal`] has real work to do.

use super::{draw_val, rng};
use crate::{convert, Coo, Csr};
use rand::Rng;

/// Parameters of the planar generator.
#[derive(Debug, Clone)]
pub struct PlanarParams {
    /// Grid side; `n = side * side`.
    pub side: usize,
    /// Probability of each diagonal-of-the-quad edge (raises degree from 4
    /// toward 6, delaunay-like).
    pub tri_prob: f64,
    /// Fraction of rows whose diagonal entry is structurally absent.
    pub missing_diag_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PlanarParams {
    /// Parameters approximating a target `n` and `nnz/n`.
    pub fn for_target(n_target: usize, nnz_per_row: f64, seed: u64) -> PlanarParams {
        let side = (n_target as f64).sqrt().round().max(2.0) as usize;
        // Grid gives ~4 off-diagonals + optional diagonal entry + triangles.
        let tri_prob = ((nnz_per_row - 4.0) / 2.0).clamp(0.0, 1.0);
        PlanarParams {
            side,
            tri_prob,
            missing_diag_fraction: 0.4,
            seed,
        }
    }

    /// Total matrix dimension.
    pub fn n(&self) -> usize {
        self.side * self.side
    }
}

/// Generates a planar-mesh-style matrix with partially missing diagonals.
///
/// The returned matrix is **not** guaranteed LU-factorizable: callers must
/// repair the diagonal first (as the paper does), which
/// [`crate::pivot::repair_diagonal`] performs. Off-diagonal magnitudes are
/// kept small relative to the repair value (1000) so the repaired matrix is
/// strongly dominant.
pub fn planar(params: &PlanarParams) -> Csr {
    let PlanarParams {
        side,
        tri_prob,
        missing_diag_fraction,
        seed,
    } = *params;
    assert!(side >= 2, "planar generator needs side >= 2");
    let n = params.n();
    let mut r = rng(seed);
    let node = |x: usize, y: usize| y * side + x;
    let mut coo = Coo::with_capacity(n, n, n * 6);

    for y in 0..side {
        for x in 0..side {
            let u = node(x, y);
            if x + 1 < side {
                let v = node(x + 1, y);
                let w = draw_val(&mut r);
                coo.push(u, v, w);
                coo.push(v, u, w);
            }
            if y + 1 < side {
                let v = node(x, y + 1);
                let w = draw_val(&mut r);
                coo.push(u, v, w);
                coo.push(v, u, w);
            }
            // Triangulating diagonal of the quad.
            if x + 1 < side && y + 1 < side && r.gen_bool(tri_prob) {
                let v = node(x + 1, y + 1);
                let w = draw_val(&mut r);
                coo.push(u, v, w);
                coo.push(v, u, w);
            }
        }
    }
    // Diagonals: present on (1 - missing) of rows, with a dominant value;
    // absent (structurally zero) elsewhere, like the rank-deficient paper
    // inputs.
    for i in 0..n {
        if !r.gen_bool(missing_diag_fraction) {
            coo.push(i, i, 8.0 + r.gen_range(0.0..1.0));
        }
    }
    convert::coo_to_csr(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pivot::repair_diagonal;

    #[test]
    fn degree_in_planar_band() {
        let p = PlanarParams::for_target(4096, 6.0, 1);
        let a = planar(&p);
        let d = a.density();
        assert!(d > 3.0 && d < 8.0, "density {d} not planar-like");
    }

    #[test]
    fn has_missing_diagonals() {
        let p = PlanarParams {
            side: 32,
            tri_prob: 0.5,
            missing_diag_fraction: 0.4,
            seed: 2,
        };
        let a = planar(&p);
        assert!(
            !a.has_full_diagonal(),
            "generator must produce deficient diagonals"
        );
        let missing = (0..a.n_rows()).filter(|&i| a.get(i, i).is_none()).count();
        let frac = missing as f64 / a.n_rows() as f64;
        assert!(frac > 0.2 && frac < 0.6, "missing fraction {frac}");
    }

    #[test]
    fn repaired_matrix_factorizes() {
        let p = PlanarParams {
            side: 8,
            tri_prob: 0.5,
            missing_diag_fraction: 0.4,
            seed: 3,
        };
        let a = planar(&p);
        let (b, inserted) = repair_diagonal(&a, 1000.0);
        assert!(inserted > 0);
        assert!(b.has_full_diagonal());
        let d = crate::convert::csr_to_dense(&b);
        assert!(
            d.lu_no_pivot().is_ok(),
            "repaired planar matrix must factorize"
        );
    }

    #[test]
    fn pattern_is_symmetric_off_diagonal() {
        let p = PlanarParams {
            side: 10,
            tri_prob: 0.3,
            missing_diag_fraction: 0.3,
            seed: 4,
        };
        let a = planar(&p);
        for i in 0..a.n_rows() {
            for (j, _) in a.row_iter(i) {
                if i != j {
                    assert!(a.get(j, i).is_some(), "edge ({i},{j}) not mirrored");
                }
            }
        }
    }
}
