//! Factorization verification: residual checks used by every test and by
//! the experiment harness to certify that all implementations (CPU
//! baseline, out-of-core GPU, unified-memory) compute the same factors.

use crate::{Csc, Csr, Val};

/// Splits a combined factor (unit-diagonal `L` strictly below, `U` on and
/// above the diagonal) into explicit `L` and `U` CSC matrices.
pub fn split_combined(lu: &Csc) -> (Csc, Csc) {
    let n = lu.n_cols();
    let mut l_ptr = vec![0usize; n + 1];
    let mut u_ptr = vec![0usize; n + 1];
    let mut l_rows = Vec::new();
    let mut l_vals = Vec::new();
    let mut u_rows = Vec::new();
    let mut u_vals = Vec::new();
    for j in 0..n {
        // Unit diagonal of L first (rows ascending: diagonal j, then below).
        l_rows.push(j as crate::Idx);
        l_vals.push(1.0);
        for (i, v) in lu.col_iter(j) {
            if i > j {
                l_rows.push(i as crate::Idx);
                l_vals.push(v);
            } else {
                u_rows.push(i as crate::Idx);
                u_vals.push(v);
            }
        }
        l_ptr[j + 1] = l_rows.len();
        u_ptr[j + 1] = u_rows.len();
    }
    let l = Csc::from_parts_unchecked(lu.n_rows(), n, l_ptr, l_rows, l_vals);
    let u = Csc::from_parts_unchecked(lu.n_rows(), n, u_ptr, u_rows, u_vals);
    (l, u)
}

/// Computes the scaled residual `max_ij |(L·U - A)_ij| / ||A||_F` by probing
/// the product against the original matrix with a handful of random-ish
/// deterministic vectors (a matrix-free check that stays O(nnz) even when
/// the factors carry heavy fill).
///
/// With `k` probe vectors the check certifies `(LU - A) v ≈ 0` for each
/// probe `v`, which bounds the residual with overwhelming probability.
pub fn residual_probe(a: &Csr, lu: &Csc, probes: usize) -> f64 {
    let n = a.n_rows();
    let (l, u) = split_combined(lu);
    let norm_a = a.frobenius_norm().max(1e-300);
    let mut worst: f64 = 0.0;
    // Deterministic quasi-random probe vectors (xorshift).
    let mut state = 0x9e3779b97f4a7c15u64;
    for _ in 0..probes.max(1) {
        let v: Vec<Val> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Map to [-1, 1].
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect();
        let av = a.spmv(&v);
        let uv = u.spmv(&v);
        let luv = l.spmv(&uv);
        let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
        let err = av
            .iter()
            .zip(&luv)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        worst = worst.max(err / (norm_a * vnorm / (n as f64).sqrt()));
    }
    worst
}

/// Entry-exact residual `max |(L·U - A)_ij|` computed densely — only for
/// oracle-scale matrices in tests.
pub fn residual_dense(a: &Csr, lu: &Csc) -> f64 {
    use crate::convert::{csc_to_dense, csr_to_dense};
    let (l, u) = split_combined(lu);
    let ld = csc_to_dense(&l);
    let ud = csc_to_dense(&u);
    let product = ld.matmul(&ud);
    product.max_abs_diff(&csr_to_dense(a))
}

/// True when the solve `A x = b` is satisfied to `tol` (relative, inf-norm).
pub fn check_solution(a: &Csr, x: &[Val], b: &[Val], tol: f64) -> bool {
    let ax = a.spmv(x);
    let bnorm = b.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1e-300);
    ax.iter()
        .zip(b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max)
        / bnorm
        <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{coo_to_csc, coo_to_csr, csr_to_dense, dense_to_csr};
    use crate::Coo;

    /// Build A = [[2,1],[4,5]] and its combined factor.
    fn fixture() -> (Csr, Csc) {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 2.0);
        a.push(0, 1, 1.0);
        a.push(1, 0, 4.0);
        a.push(1, 1, 5.0);
        let mut lu = Coo::new(2, 2);
        lu.push(0, 0, 2.0);
        lu.push(0, 1, 1.0);
        lu.push(1, 0, 2.0); // L
        lu.push(1, 1, 3.0); // U
        (coo_to_csr(&a), coo_to_csc(&lu))
    }

    #[test]
    fn split_produces_unit_lower() {
        let (_, lu) = fixture();
        let (l, u) = split_combined(&lu);
        assert_eq!(l.get(0, 0), Some(1.0));
        assert_eq!(l.get(1, 1), Some(1.0));
        assert_eq!(l.get(1, 0), Some(2.0));
        assert_eq!(u.get(0, 0), Some(2.0));
        assert_eq!(u.get(1, 1), Some(3.0));
        assert_eq!(u.get(1, 0), None);
    }

    #[test]
    fn residuals_vanish_for_exact_factor() {
        let (a, lu) = fixture();
        assert!(residual_dense(&a, &lu) < 1e-14);
        assert!(residual_probe(&a, &lu, 3) < 1e-14);
    }

    #[test]
    fn residuals_catch_wrong_factor() {
        let (a, mut lu) = fixture();
        lu.vals[0] += 0.5; // corrupt
        assert!(residual_dense(&a, &lu) > 0.1);
        assert!(residual_probe(&a, &lu, 3) > 1e-6);
    }

    #[test]
    fn residual_matches_dense_oracle_on_random_matrix() {
        // Dense-factor a diagonally dominant matrix and verify through the
        // sparse path.
        let n = 8;
        let mut d = crate::Dense::zeros(n, n);
        let mut state = 1u64;
        for i in 0..n {
            for j in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if i == j {
                    d[(i, j)] = 10.0;
                } else if state.is_multiple_of(3) {
                    d[(i, j)] = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                }
            }
        }
        let lu_dense = d.lu_no_pivot().expect("dominant");
        let a = dense_to_csr(&d);
        // Convert combined dense LU (with implicit unit diagonal) to CSC.
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = lu_dense[(i, j)];
                if v != 0.0 && !(i > j && v == 0.0) {
                    coo.push(i, j, v);
                }
            }
        }
        let lu = coo_to_csc(&coo);
        assert!(residual_dense(&a, &lu) < 1e-10, "dense oracle mismatch");
        let _ = csr_to_dense(&a);
    }

    #[test]
    fn check_solution_accepts_and_rejects() {
        let (a, _) = fixture();
        let x = vec![1.0, 1.0];
        let b = a.spmv(&x);
        assert!(check_solution(&a, &x, &b, 1e-12));
        assert!(!check_solution(&a, &[1.0, 2.0], &b, 1e-6));
    }
}
