//! Compressed sparse column format — the layout of the numeric phase.
//!
//! Algorithm 6 of the paper relies on the CSC row indices being **sorted**
//! within each column so that `As(i, j)` can be located by binary search.
//! [`Csc`] enforces that invariant at construction, and
//! [`Csc::find_in_col`] is exactly the paper's search routine.

use crate::{error::SparseError, Idx, Val};

/// A sparse matrix in compressed sparse column (CSC) format with strictly
/// ascending row indices in every column.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    n_rows: usize,
    n_cols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` is the index range of column `j`.
    pub col_ptr: Vec<usize>,
    /// Row index of each stored entry, ascending within each column.
    pub row_idx: Vec<Idx>,
    /// Value of each stored entry.
    pub vals: Vec<Val>,
}

impl Csc {
    /// Builds a CSC matrix from raw arrays, validating offsets, bounds and
    /// the sorted-rows invariant.
    pub fn new(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Idx>,
        vals: Vec<Val>,
    ) -> Result<Self, SparseError> {
        Csc::check_structure(n_rows, n_cols, &col_ptr, &row_idx, vals.len())?;
        Ok(Csc {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            vals,
        })
    }

    /// The structural invariants of [`Csc::new`], as a standalone check.
    fn check_structure(
        n_rows: usize,
        n_cols: usize,
        col_ptr: &[usize],
        row_idx: &[Idx],
        n_vals: usize,
    ) -> Result<(), SparseError> {
        if col_ptr.len() != n_cols + 1 {
            return Err(SparseError::MalformedOffsets(format!(
                "col_ptr has length {}, expected {}",
                col_ptr.len(),
                n_cols + 1
            )));
        }
        if col_ptr[0] != 0 || *col_ptr.last().expect("len >= 1") != row_idx.len() {
            return Err(SparseError::MalformedOffsets(
                "col_ptr must start at 0 and end at nnz".into(),
            ));
        }
        if row_idx.len() != n_vals {
            return Err(SparseError::MalformedOffsets(
                "row_idx and vals lengths differ".into(),
            ));
        }
        for j in 0..n_cols {
            if col_ptr[j] > col_ptr[j + 1] {
                return Err(SparseError::MalformedOffsets(format!(
                    "col_ptr decreases at column {j}"
                )));
            }
            let col = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            for w in col.windows(2) {
                if w[0] == w[1] {
                    return Err(SparseError::DuplicateEntry {
                        row: w[1] as usize,
                        col: j,
                    });
                }
                if w[0] > w[1] {
                    return Err(SparseError::UnsortedIndices { major: j });
                }
            }
            if let Some(&last) = col.last() {
                if last as usize >= n_rows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: last as usize,
                        col: j,
                        n_rows,
                        n_cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Full validation for untrusted data: the structural invariants of
    /// [`Csc::new`] plus finiteness of every stored value. Finiteness is
    /// deliberately not part of construction — factors can transiently
    /// hold non-finite values — so call this at trust boundaries.
    pub fn validate(&self) -> Result<(), SparseError> {
        Csc::check_structure(
            self.n_rows,
            self.n_cols,
            &self.col_ptr,
            &self.row_idx,
            self.vals.len(),
        )?;
        for j in 0..self.n_cols {
            for (i, v) in self.col_iter(j) {
                if !v.is_finite() {
                    return Err(SparseError::NonFiniteValue { row: i, col: j });
                }
            }
        }
        Ok(())
    }

    /// Builds a CSC matrix without validation; debug builds re-verify.
    pub fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Idx>,
        vals: Vec<Val>,
    ) -> Self {
        debug_assert!(
            Csc::new(
                n_rows,
                n_cols,
                col_ptr.clone(),
                row_idx.clone(),
                vals.clone()
            )
            .is_ok(),
            "from_parts_unchecked given invalid CSC"
        );
        Csc {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            vals,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[Idx] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Values of column `j`.
    #[inline]
    pub fn col_vals(&self, j: usize) -> &[Val] {
        &self.vals[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Entries `(row, val)` of column `j`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, Val)> + '_ {
        self.col_rows(j)
            .iter()
            .zip(self.col_vals(j))
            .map(|(&r, &v)| (r as usize, v))
    }

    /// Binary search for row `i` within column `j` (Algorithm 6 of the
    /// paper). Returns the *storage index* into `row_idx`/`vals`, so callers
    /// can both read and write the located entry.
    ///
    /// Also returns the number of probe iterations, which the GPU cost model
    /// charges as the sparse-access penalty.
    #[inline]
    pub fn find_in_col(&self, i: usize, j: usize) -> (Option<usize>, u32) {
        let target = i as Idx;
        let mut fs = self.col_ptr[j] as isize;
        let mut fe = self.col_ptr[j + 1] as isize - 1;
        let mut probes = 0;
        while fe >= fs {
            probes += 1;
            let mid = ((fs + fe) / 2) as usize;
            let r = self.row_idx[mid];
            if r == target {
                return (Some(mid), probes);
            } else if r > target {
                fe = mid as isize - 1;
            } else {
                fs = mid as isize + 1;
            }
        }
        (None, probes)
    }

    /// Looks up `A[i, j]`.
    pub fn get(&self, i: usize, j: usize) -> Option<Val> {
        self.find_in_col(i, j).0.map(|k| self.vals[k])
    }

    /// First storage index in column `j` whose row is `> i` — the paper uses
    /// this to iterate the strictly-lower part of a column (the sub-diagonal
    /// of `L`). Returns `col_ptr[j+1]` when none exists.
    pub fn lower_bound_after(&self, i: usize, j: usize) -> usize {
        let col = self.col_rows(j);
        let pos = col.partition_point(|&r| r as usize <= i);
        self.col_ptr[j] + pos
    }

    /// Sparse matrix–vector product `y = A x`.
    pub fn spmv(&self, x: &[Val]) -> Vec<Val> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch in spmv");
        let mut y = vec![0.0; self.n_rows];
        for (j, &xj) in x.iter().enumerate() {
            for (i, v) in self.col_iter(j) {
                y[i] += v * xj;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc {
        // Column-major of
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        Csc::new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 4.0, 3.0, 2.0, 5.0],
        )
        .expect("valid")
    }

    #[test]
    fn construction_and_access() {
        let a = sample();
        assert_eq!(a.get(2, 0), Some(4.0));
        assert_eq!(a.get(1, 0), None);
        assert_eq!(a.col_rows(2), &[0, 2]);
    }

    #[test]
    fn validate_checks_structure_and_finiteness() {
        let mut a = sample();
        a.validate().expect("sample is clean");
        a.vals[1] = f64::NEG_INFINITY;
        assert_eq!(
            a.validate(),
            Err(SparseError::NonFiniteValue { row: 2, col: 0 })
        );
        let mut b = sample();
        b.row_idx[0] = 2; // column 0 becomes [2, 2]: a duplicate entry
        assert!(matches!(
            b.validate(),
            Err(SparseError::DuplicateEntry { row: 2, col: 0 })
        ));
    }

    #[test]
    fn binary_search_counts_probes() {
        let a = sample();
        let (found, probes) = a.find_in_col(2, 2);
        assert!(found.is_some());
        assert!((1..=2).contains(&probes));
        let (missing, _) = a.find_in_col(1, 2);
        assert!(missing.is_none());
    }

    #[test]
    fn binary_search_on_empty_column() {
        let a = Csc::new(2, 2, vec![0, 0, 1], vec![1], vec![9.0]).expect("valid");
        let (found, probes) = a.find_in_col(0, 0);
        assert!(found.is_none());
        assert_eq!(probes, 0);
    }

    #[test]
    fn lower_bound_after_skips_diagonal() {
        let a = sample();
        // Column 0 has rows [0, 2]; entries strictly below row 0 start at row 2.
        let k = a.lower_bound_after(0, 0);
        assert_eq!(a.row_idx[k], 2);
        // Nothing below row 2.
        assert_eq!(a.lower_bound_after(2, 0), a.col_ptr[1]);
    }

    #[test]
    fn rejects_unsorted_columns() {
        assert!(matches!(
            Csc::new(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 1.0]),
            Err(SparseError::UnsortedIndices { major: 0 })
        ));
    }

    #[test]
    fn rejects_duplicate_row_in_column() {
        assert!(matches!(
            Csc::new(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 1.0]),
            Err(SparseError::DuplicateEntry { row: 1, col: 0 })
        ));
    }

    #[test]
    fn spmv_matches_row_major() {
        let a = sample();
        assert_eq!(a.spmv(&[1.0, 2.0, 3.0]), vec![7.0, 6.0, 19.0]);
    }
}
