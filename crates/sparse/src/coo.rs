//! Coordinate (triplet) format, used for matrix assembly and I/O.

use crate::{error::SparseError, Idx, Val};

/// A sparse matrix in coordinate (COO / triplet) format.
///
/// COO is the assembly format: generators and the Matrix Market reader
/// produce it, and it converts to [`crate::Csr`] / [`crate::Csc`] for
/// computation. Duplicate coordinates are allowed until
/// [`Coo::sum_duplicates`] is called; conversions sum duplicates implicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    n_rows: usize,
    n_cols: usize,
    /// Row index of each entry.
    pub rows: Vec<Idx>,
    /// Column index of each entry.
    pub cols: Vec<Idx>,
    /// Value of each entry.
    pub vals: Vec<Val>,
}

impl Coo {
    /// Creates an empty `n_rows x n_cols` COO matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Coo {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with room for `cap` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        Coo {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds a COO matrix from parallel triplet arrays, validating bounds.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        rows: Vec<Idx>,
        cols: Vec<Idx>,
        vals: Vec<Val>,
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::MalformedOffsets(format!(
                "triplet arrays disagree in length: {} rows, {} cols, {} vals",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        for (&r, &c) in rows.iter().zip(&cols) {
            if r as usize >= n_rows || c as usize >= n_cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r as usize,
                    col: c as usize,
                    n_rows,
                    n_cols,
                });
            }
        }
        Ok(Coo {
            n_rows,
            n_cols,
            rows,
            cols,
            vals,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries (including any duplicates not yet summed).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends one entry. Panics in debug builds on out-of-bounds indices.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: Val) {
        debug_assert!(
            row < self.n_rows && col < self.n_cols,
            "({row},{col}) out of bounds"
        );
        self.rows.push(row as Idx);
        self.cols.push(col as Idx);
        self.vals.push(val);
    }

    /// Sorts entries into row-major order and sums duplicate coordinates.
    ///
    /// After this call every (row, col) pair is unique and the triplets are
    /// sorted by `(row, col)`, which makes the CSR conversion a single scan.
    pub fn sum_duplicates(&mut self) {
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_unstable_by_key(|&k| (self.rows[k], self.cols[k]));
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for k in order {
            let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("vals tracks rows") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Returns the transposed matrix (rows and columns swapped).
    pub fn transpose(&self) -> Coo {
        Coo {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Iterates over `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Val)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut a = Coo::new(3, 3);
        a.push(0, 0, 1.0);
        a.push(2, 1, -2.0);
        assert_eq!(a.nnz(), 2);
        let triplets: Vec<_> = a.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 1.0), (2, 1, -2.0)]);
    }

    #[test]
    fn from_triplets_validates_bounds() {
        let err = Coo::from_triplets(2, 2, vec![0, 3], vec![0, 0], vec![1.0, 1.0]);
        assert!(matches!(
            err,
            Err(SparseError::IndexOutOfBounds { row: 3, .. })
        ));
    }

    #[test]
    fn from_triplets_validates_lengths() {
        let err = Coo::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(err, Err(SparseError::MalformedOffsets(_))));
    }

    #[test]
    fn sum_duplicates_merges_and_sorts() {
        let mut a = Coo::new(2, 2);
        a.push(1, 1, 2.0);
        a.push(0, 0, 1.0);
        a.push(1, 1, 3.0);
        a.push(0, 1, 4.0);
        a.sum_duplicates();
        let triplets: Vec<_> = a.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 1.0), (0, 1, 4.0), (1, 1, 5.0)]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut a = Coo::new(2, 3);
        a.push(0, 2, 7.0);
        let t = a.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.iter().next(), Some((2, 0, 7.0)));
    }
}
