//! Sparse triangular solves — the "easy" systems LU factorization reduces
//! `A x = b` to (paper Section 1).
//!
//! The factors produced by the numeric phase are stored as one combined CSC
//! matrix (unit-diagonal `L` below, `U` on and above the diagonal, the GLU
//! convention), or as separate triangular matrices. Both entry points are
//! provided.

use crate::{Csc, SparseError, Val};

/// Solves `L y = b` where `L` is the unit-lower-triangular part of the
/// combined factor `lu` (diagonal entries of `lu` belong to `U` and are
/// skipped; `L`'s diagonal is implicitly 1).
pub fn solve_lower_unit(lu: &Csc, b: &[Val]) -> Vec<Val> {
    let n = lu.n_cols();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut y = b.to_vec();
    for j in 0..n {
        let yj = y[j];
        if yj == 0.0 {
            continue;
        }
        // Entries strictly below the diagonal of column j are L entries.
        let start = lu.lower_bound_after(j, j);
        for k in start..lu.col_ptr[j + 1] {
            let i = lu.row_idx[k] as usize;
            y[i] -= lu.vals[k] * yj;
        }
    }
    y
}

/// Solves `U x = y` where `U` is the upper-triangular part (incl. diagonal)
/// of the combined factor `lu`.
pub fn solve_upper(lu: &Csc, y: &[Val]) -> Result<Vec<Val>, SparseError> {
    let n = lu.n_cols();
    assert_eq!(y.len(), n, "rhs length mismatch");
    let mut x = y.to_vec();
    for j in (0..n).rev() {
        let (diag_pos, _) = lu.find_in_col(j, j);
        let diag_pos = diag_pos.ok_or(SparseError::ZeroDiagonal { row: j })?;
        let d = lu.vals[diag_pos];
        if d == 0.0 || !d.is_finite() {
            return Err(SparseError::ZeroPivot { col: j });
        }
        x[j] /= d;
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        // Entries strictly above the diagonal of column j are U entries.
        for k in lu.col_ptr[j]..diag_pos {
            let i = lu.row_idx[k] as usize;
            x[i] -= lu.vals[k] * xj;
        }
    }
    Ok(x)
}

/// Solves `(L U) x = b` given the combined factor.
pub fn solve_lu(lu: &Csc, b: &[Val]) -> Result<Vec<Val>, SparseError> {
    let y = solve_lower_unit(lu, b);
    solve_upper(lu, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{coo_to_csc, csc_to_dense};
    use crate::Coo;

    /// Combined LU factor of
    ///   A = [2 1]     L = [1 0]   U = [2 1]
    ///       [4 5]         [2 1]       [0 3]
    fn combined_lu() -> Csc {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0); // U
        coo.push(0, 1, 1.0); // U
        coo.push(1, 0, 2.0); // L
        coo.push(1, 1, 3.0); // U
        coo_to_csc(&coo)
    }

    #[test]
    fn lower_solve_applies_unit_diagonal() {
        let lu = combined_lu();
        // L y = [1, 4]  =>  y = [1, 2]
        let y = solve_lower_unit(&lu, &[1.0, 4.0]);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn upper_solve_back_substitutes() {
        let lu = combined_lu();
        // U x = [3, 3]  =>  x = [1, 1]
        let x = solve_upper(&lu, &[3.0, 3.0]).expect("nonzero diagonal");
        assert_eq!(x, vec![1.0, 1.0]);
    }

    #[test]
    fn full_solve_recovers_known_solution() {
        let lu = combined_lu();
        // A = L*U = [[2,1],[4,5]]; pick x = [1, -1] => b = [1, -1].
        let b = vec![2.0 - 1.0, 4.0 - 5.0];
        let x = solve_lu(&lu, &b).expect("solvable");
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn upper_solve_rejects_zero_pivot() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 0.0);
        coo.push(1, 1, 1.0);
        let lu = coo_to_csc(&coo);
        assert!(matches!(
            solve_upper(&lu, &[1.0, 1.0]),
            Err(SparseError::ZeroPivot { col: 0 })
        ));
    }

    #[test]
    fn upper_solve_rejects_missing_diagonal() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        let lu = coo_to_csc(&coo);
        assert!(matches!(
            solve_upper(&lu, &[1.0, 1.0]),
            Err(SparseError::ZeroDiagonal { row: 1 })
        ));
    }

    mod props {
        use super::*;
        use crate::convert::{coo_to_csc, csr_to_dense, dense_to_csr};
        use crate::gen::random::random_dominant;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Factor a random dominant matrix with the dense oracle,
            /// solve through the sparse triangular path, and verify
            /// `A x = b` holds.
            #[test]
            fn prop_solve_through_oracle_factor(
                n in 2usize..24,
                density in 1.5f64..5.0,
                seed in 0u64..500,
            ) {
                let a = random_dominant(n, density, seed);
                let lu_dense = csr_to_dense(&a).lu_no_pivot().expect("dominant");
                let mut coo = Coo::new(n, n);
                for i in 0..n {
                    for j in 0..n {
                        if lu_dense[(i, j)] != 0.0 {
                            coo.push(i, j, lu_dense[(i, j)]);
                        }
                    }
                }
                let lu = coo_to_csc(&coo);
                let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
                let b = a.spmv(&x_true);
                let x = solve_lu(&lu, &b).expect("solvable");
                let _ = dense_to_csr(&csr_to_dense(&a)); // keep conversions honest
                for (p, q) in x.iter().zip(&x_true) {
                    prop_assert!((p - q).abs() < 1e-8, "{p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn combined_factor_reconstructs_a() {
        // Sanity-check the fixture: split and multiply.
        let lu = combined_lu();
        let d = csc_to_dense(&lu);
        // L = [[1,0],[2,1]], U = [[2,1],[0,3]] -> A = [[2,1],[4,5]]
        assert_eq!(d[(1, 0)], 2.0);
        assert_eq!(d[(0, 0)], 2.0);
    }
}
