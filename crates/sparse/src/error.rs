//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing, converting or reading matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry referenced a row or column outside the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows of the matrix.
        n_rows: usize,
        /// Number of columns of the matrix.
        n_cols: usize,
    },
    /// Offset array (`row_ptr` / `col_ptr`) is malformed: wrong length,
    /// non-monotone, or inconsistent with the index array.
    MalformedOffsets(String),
    /// Indices within a row (CSR) or column (CSC) are not strictly ascending.
    UnsortedIndices {
        /// The row (CSR) or column (CSC) where the violation was found.
        major: usize,
    },
    /// The same (row, col) coordinate appeared more than once where
    /// duplicates are not permitted.
    DuplicateEntry {
        /// Row of the duplicate.
        row: usize,
        /// Column of the duplicate.
        col: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        n_rows: usize,
        /// Number of columns.
        n_cols: usize,
    },
    /// A structurally zero diagonal entry where one is required
    /// (LU without pivoting needs a full structural diagonal).
    ZeroDiagonal {
        /// The row whose diagonal is missing.
        row: usize,
    },
    /// Numerically zero (or non-finite) pivot encountered.
    ZeroPivot {
        /// The column of the offending pivot.
        col: usize,
    },
    /// A stored value is NaN or infinite where finite data is required.
    NonFiniteValue {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A numeric update targeted a position the symbolic pattern does not
    /// contain — the fill closure was violated (corrupt pattern).
    MissingFill {
        /// Row of the missing position.
        row: usize,
        /// Column of the missing position.
        col: usize,
    },
    /// Matrix Market parsing failure.
    Parse(String),
    /// Underlying I/O failure (stringified; `std::io::Error` is not `Clone`).
    Io(String),
    /// Permutation vector is not a bijection on `0..n`.
    InvalidPermutation(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows,
                n_cols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {n_rows}x{n_cols} matrix"
            ),
            SparseError::MalformedOffsets(msg) => write!(f, "malformed offset array: {msg}"),
            SparseError::UnsortedIndices { major } => {
                write!(
                    f,
                    "indices not strictly ascending within major index {major}"
                )
            }
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            SparseError::NotSquare { n_rows, n_cols } => {
                write!(
                    f,
                    "operation requires a square matrix, got {n_rows}x{n_cols}"
                )
            }
            SparseError::ZeroDiagonal { row } => {
                write!(f, "structurally zero diagonal at row {row}")
            }
            SparseError::ZeroPivot { col } => write!(f, "zero or non-finite pivot in column {col}"),
            SparseError::NonFiniteValue { row, col } => {
                write!(f, "non-finite value at ({row}, {col})")
            }
            SparseError::MissingFill { row, col } => {
                write!(
                    f,
                    "missing fill position ({row}, {col}): symbolic closure violated"
                )
            }
            SparseError::Parse(msg) => write!(f, "matrix market parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            n_rows: 4,
            n_cols: 4,
        };
        assert!(e.to_string().contains("(5, 7)"));
        assert!(e.to_string().contains("4x4"));

        let e = SparseError::ZeroPivot { col: 3 };
        assert!(e.to_string().contains("column 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("missing.mtx"));
    }
}
