//! Hand-rolled JSON: a small value tree with a writer and a minimal
//! recursive-descent parser.
//!
//! The workspace deliberately carries no serde; every machine-readable
//! artifact (the run report, the Chrome trace, `BENCH_*.json`) is built
//! through [`JsonValue`], and the validation tooling parses them back with
//! [`parse`]. Numbers round-trip exactly: `f64` serialization uses Rust's
//! shortest-round-trip `Display`, and the parser reads with `str::parse`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; exact for integers < 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builder: an empty object.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Builder: sets `key` on an object (panics on non-objects — builder
    /// misuse, not input data).
    pub fn set(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("JsonValue::set on non-object"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as u64)
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => write_number(out, *v),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}
impl<V: Into<JsonValue>> From<Option<V>> for JsonValue {
    fn from(v: Option<V>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}
impl From<BTreeMap<String, JsonValue>> for JsonValue {
    fn from(v: BTreeMap<String, JsonValue>) -> Self {
        JsonValue::Obj(v.into_iter().collect())
    }
}

/// Writes an `f64` so that integers print without a fractional part and
/// every value round-trips through the parser bit-exactly.
fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else {
        // Rust's shortest-round-trip Display.
        write!(out, "{v}").expect("string write");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per level, so a hostile
/// `[[[[…]]]]` document would otherwise overflow the thread stack;
/// past this depth it returns a typed [`JsonError`] instead. Far above
/// anything the workspace emits (reports nest ~4 deep).
pub const MAX_DEPTH: usize = 512;

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else). Minimal by design: it accepts exactly the constructs the
/// workspace emits (and standard JSON in general), and rejects garbage
/// with an offset. Containers nested deeper than [`MAX_DEPTH`] are a
/// typed error, not a stack overflow.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing data", pos));
    }
    Ok(value)
}

fn err(msg: &str, at: usize) -> JsonError {
    JsonError {
        msg: msg.to_string(),
        at,
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    skip_ws(b, pos);
    if depth > MAX_DEPTH {
        return Err(err("nesting too deep", *pos));
    }
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{lit}'"), *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| err("bad number", start))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("short \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| err("bad utf8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_pretty_print() {
        let v = JsonValue::obj()
            .set("schema_version", 1u64)
            .set("name", "a \"quoted\" name")
            .set("items", vec![JsonValue::from(1u64), JsonValue::from(2u64)])
            .set("none", Option::<u64>::None);
        let s = v.to_pretty();
        assert!(s.contains("\"schema_version\": 1"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("null"));
        assert_eq!(parse(&s).expect("round-trips"), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for &x in &[0.0, 1.5, 1e-9, 123456789.000000001, 2.0f64.powi(53)] {
            let s = JsonValue::Num(x).to_compact();
            let back = parse(&s).expect("parses").as_f64().expect("number");
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c\nd"}],"e":true,"f":null,"g":-1.25e2}"#).expect("ok");
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("g").and_then(JsonValue::as_f64), Some(-125.0));
        let arr = v.get("a").and_then(JsonValue::as_arr).expect("array");
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("c\nd"));
    }

    #[test]
    fn rejects_garbage_with_offset() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_compact(), "null");
    }
}
