//! The recording interface and the zero-cost disabled sink.

use crate::event::{AttrValue, EventKind};

/// Where telemetry events go.
///
/// The engines call the convenience methods ([`TraceSink::span_begin`],
/// [`TraceSink::span_end`], [`TraceSink::instant`], [`TraceSink::counter`])
/// with stack-built attribute slices; only an enabled sink turns them into
/// owned [`TraceEvent`]s. Emission sites that must build owned strings
/// (e.g. `format!`ed attribute values) should guard on
/// [`TraceSink::enabled`] so a disabled run allocates nothing.
pub trait TraceSink: Sync {
    /// True when events are being kept. The default methods check this
    /// before constructing anything owned.
    fn enabled(&self) -> bool;

    /// Records one event. Only called when [`TraceSink::enabled`] is true.
    fn event(
        &self,
        name: &'static str,
        cat: &'static str,
        kind: EventKind,
        ts_ns: f64,
        attrs: &[(&'static str, AttrValue)],
    );

    /// Opens a span at `ts_ns`.
    fn span_begin(
        &self,
        name: &'static str,
        cat: &'static str,
        ts_ns: f64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        if self.enabled() {
            self.event(name, cat, EventKind::Begin, ts_ns, attrs);
        }
    }

    /// Closes the innermost open span with this name at `ts_ns`.
    fn span_end(
        &self,
        name: &'static str,
        cat: &'static str,
        ts_ns: f64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        if self.enabled() {
            self.event(name, cat, EventKind::End, ts_ns, attrs);
        }
    }

    /// Records a point event.
    fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        ts_ns: f64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        if self.enabled() {
            self.event(name, cat, EventKind::Instant, ts_ns, attrs);
        }
    }

    /// Records a counter sample.
    fn counter(&self, name: &'static str, cat: &'static str, ts_ns: f64, value: f64) {
        if self.enabled() {
            self.event(name, cat, EventKind::Counter(value), ts_ns, &[]);
        }
    }
}

/// The disabled sink: every emission is a no-op and, because the default
/// methods bail on [`TraceSink::enabled`] before building anything owned,
/// a traced engine running against it performs zero extra heap
/// allocations.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn event(
        &self,
        _name: &'static str,
        _cat: &'static str,
        _kind: EventKind,
        _ts_ns: f64,
        _attrs: &[(&'static str, AttrValue)],
    ) {
    }
}

/// A shared instance for `&NOOP` call sites.
pub static NOOP: NoopSink = NoopSink;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        assert!(!NOOP.enabled());
        // None of these may panic or do anything observable.
        NOOP.span_begin("a", "c", 0.0, &[("k", AttrValue::U64(1))]);
        NOOP.span_end("a", "c", 1.0, &[]);
        NOOP.instant("b", "c", 2.0, &[]);
        NOOP.counter("n", "c", 3.0, 4.0);
    }
}
