//! The event model: what one telemetry record carries.

use std::fmt;

/// An attribute value attached to an event.
///
/// Numeric variants are preferred on hot paths (no heap allocation);
/// [`AttrValue::Sym`] covers static strings (mode letters, engine names)
/// equally cheaply. [`AttrValue::Str`] owns its data — callers should guard
/// its construction behind [`crate::TraceSink::enabled`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Real-valued quantity (timings, fractions).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (no allocation).
    Sym(&'static str),
    /// Owned string (allocates — guard behind `enabled()`).
    Str(String),
}

impl AttrValue {
    /// The value as `u64`, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            AttrValue::U64(v) => Some(v),
            AttrValue::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64`, widening integer variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            AttrValue::F64(v) => Some(v),
            AttrValue::U64(v) => Some(v as f64),
            AttrValue::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Sym(s) => Some(s),
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Sym(s) => f.write_str(s),
            AttrValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Sym(v)
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// The kind of a [`TraceEvent`], mirroring the Chrome trace-event phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Span opens at `ts_ns` (Chrome `ph: "B"`).
    Begin,
    /// Span closes at `ts_ns` (Chrome `ph: "E"`).
    End,
    /// Point event (Chrome `ph: "i"`).
    Instant,
    /// Counter sample with the carried value (Chrome `ph: "C"`).
    Counter(f64),
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (static: span names are part of the schema).
    pub name: &'static str,
    /// Category, used to group related spans (e.g. `phase`, `level`).
    pub cat: &'static str,
    /// What kind of record this is.
    pub kind: EventKind,
    /// Simulated timestamp in nanoseconds (monotone within a run).
    pub ts_ns: f64,
    /// Key=value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl TraceEvent {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_conversions_and_lookup() {
        let ev = TraceEvent {
            name: "numeric.level",
            cat: "level",
            kind: EventKind::End,
            ts_ns: 12.5,
            attrs: vec![("width", 7usize.into()), ("mode", "A".into())],
        };
        assert_eq!(ev.attr("width").and_then(AttrValue::as_u64), Some(7));
        assert_eq!(ev.attr("mode").and_then(AttrValue::as_str), Some("A"));
        assert!(ev.attr("missing").is_none());
    }

    #[test]
    fn display_formats_values() {
        assert_eq!(AttrValue::U64(3).to_string(), "3");
        assert_eq!(AttrValue::Bool(true).to_string(), "true");
        assert_eq!(AttrValue::Sym("B").to_string(), "B");
    }
}
