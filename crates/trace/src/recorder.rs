//! The enabled sink: owns the event log of one run.

use crate::event::{AttrValue, EventKind, TraceEvent};
use crate::sink::TraceSink;
use std::sync::Mutex;

/// Records every event of one factorization, in emission order.
///
/// Engines emit from their (serial) orchestration code, never from inside
/// simulated kernel blocks, so the mutex is uncontended; it exists so the
/// recorder can be shared as `&dyn TraceSink` across the pipeline without
/// interior-mutability gymnastics at every call site.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Snapshot of all events recorded so far, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// Consumes the recorder, returning the event log.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_inner().expect("recorder poisoned")
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of completed spans (balanced begin/end pairs are counted by
    /// their `End` events).
    pub fn span_count(&self) -> usize {
        self.events
            .lock()
            .expect("recorder poisoned")
            .iter()
            .filter(|e| e.kind == EventKind::End)
            .count()
    }
}

impl TraceSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(
        &self,
        name: &'static str,
        cat: &'static str,
        kind: EventKind,
        ts_ns: f64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(TraceEvent {
                name,
                cat,
                kind,
                ts_ns,
                attrs: attrs.to_vec(),
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_attrs() {
        let rec = Recorder::new();
        assert!(rec.is_empty());
        rec.span_begin("phase.symbolic", "phase", 0.0, &[]);
        rec.span_end(
            "phase.symbolic",
            "phase",
            10.0,
            &[("iterations", AttrValue::U64(4))],
        );
        rec.instant("recovery", "recovery", 10.0, &[]);
        rec.counter("width", "level", 10.0, 3.0);
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.span_count(), 1);
        let evs = rec.into_events();
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[1].attr("iterations").unwrap().as_u64(), Some(4));
        assert_eq!(evs[3].kind, EventKind::Counter(3.0));
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
