//! Chrome trace-event exporter.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Timestamps
//! are the pipeline's *simulated* nanoseconds converted to the format's
//! microsecond unit, so a factorization renders as a flamegraph over
//! simulated time.

use crate::event::{EventKind, TraceEvent};
use crate::json::JsonValue;

/// Single process/thread ids: the simulator is a single logical timeline.
const PID: u64 = 1;
const TID: u64 = 1;

/// Renders events as Chrome trace-event JSON.
///
/// Events are stably sorted by timestamp, so the emission order breaks ties
/// — in particular a zero-length span keeps its `B` before its `E`, and
/// nested spans opened at the same instant stay properly nested. Spans left
/// open by an aborted code path (an engine erroring out of a chunk, a
/// ladder rung failing mid-phase) are closed with synthetic `E` events at
/// the final timestamp, so the output is always balanced.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    // total_cmp: a NaN timestamp from a hostile or truncated event log
    // sorts last instead of panicking the exporter.
    ordered.sort_by(|a, b| a.ts_ns.total_cmp(&b.ts_ns));

    let mut trace_events: Vec<JsonValue> = ordered.iter().map(|e| chrome_event(e)).collect();

    // Close any span a failed code path left open (LIFO, so the synthetic
    // ends unwind the open stack innermost-first).
    let mut open: Vec<&TraceEvent> = Vec::new();
    for e in &ordered {
        match e.kind {
            EventKind::Begin => open.push(e),
            EventKind::End => {
                if let Some(i) = open.iter().rposition(|b| b.name == e.name) {
                    open.remove(i);
                }
            }
            _ => {}
        }
    }
    let last_ts = ordered.last().map_or(0.0, |e| e.ts_ns);
    while let Some(b) = open.pop() {
        trace_events.push(
            JsonValue::obj()
                .set("name", b.name)
                .set("cat", b.cat)
                .set("ph", "E")
                .set("ts", last_ts / 1000.0)
                .set("pid", PID)
                .set("tid", TID),
        );
    }

    JsonValue::obj()
        .set("traceEvents", trace_events)
        .set("displayTimeUnit", "ns")
        .to_compact()
}

fn chrome_event(e: &TraceEvent) -> JsonValue {
    let ph = match e.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
        EventKind::Counter(_) => "C",
    };
    let mut out = JsonValue::obj()
        .set("name", e.name)
        .set("cat", e.cat)
        .set("ph", ph)
        .set("ts", e.ts_ns / 1000.0)
        .set("pid", PID)
        .set("tid", TID);
    if matches!(e.kind, EventKind::Instant) {
        // Thread-scoped instant marker.
        out = out.set("s", "t");
    }
    let mut args = JsonValue::obj();
    if let EventKind::Counter(v) = e.kind {
        args = args.set(e.name, v);
    }
    for (k, v) in &e.attrs {
        args = args.set(k, attr_json(v));
    }
    if let JsonValue::Obj(fields) = &args {
        if !fields.is_empty() {
            out = out.set("args", args);
        }
    }
    out
}

fn attr_json(v: &crate::event::AttrValue) -> JsonValue {
    use crate::event::AttrValue::*;
    match v {
        U64(x) => JsonValue::from(*x),
        I64(x) => JsonValue::from(*x),
        F64(x) => JsonValue::from(*x),
        Bool(x) => JsonValue::from(*x),
        Sym(s) => JsonValue::from(*s),
        Str(s) => JsonValue::from(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AttrValue;
    use crate::json::parse;

    fn ev(name: &'static str, kind: EventKind, ts_ns: f64) -> TraceEvent {
        TraceEvent {
            name,
            cat: "test",
            kind,
            ts_ns,
            attrs: vec![],
        }
    }

    #[test]
    fn empty_run_exports_a_valid_empty_trace() {
        // A zero-span run (factorization failed before the first event,
        // or tracing was enabled on a no-op path) must still produce a
        // well-formed document, not panic or emit garbage.
        let doc = parse(&chrome_trace(&[])).expect("valid json");
        let list = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert!(list.is_empty());
    }

    #[test]
    fn non_finite_timestamps_do_not_panic_the_exporter() {
        // A truncated or hand-edited event log can carry NaN timestamps;
        // the exporter sorts them deterministically instead of panicking.
        let events = vec![
            ev("a", EventKind::Begin, f64::NAN),
            ev("a", EventKind::End, 5.0),
            ev("b", EventKind::Instant, f64::INFINITY),
        ];
        let doc = parse(&chrome_trace(&events)).expect("valid json");
        let list = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        // NaN sorts last, so the Begin lands after its End and the
        // balancer closes it with a synthetic E: 3 events in, 4 out.
        assert_eq!(list.len(), 4);
        let begins = list
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("B"))
            .count();
        let ends = list
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("E"))
            .count();
        // Every Begin got closed (the stray input End passes through).
        assert!(
            begins <= ends,
            "some Begin was left open: {begins} B, {ends} E"
        );
    }

    #[test]
    fn emits_sorted_balanced_events() {
        let events = vec![
            ev("outer", EventKind::Begin, 0.0),
            ev("inner", EventKind::Begin, 5.0),
            ev("inner", EventKind::End, 5.0), // zero-length span
            ev("outer", EventKind::End, 10.0),
            ev("mark", EventKind::Instant, 7.0),
            ev("width", EventKind::Counter(3.0), 7.0),
        ];
        let out = chrome_trace(&events);
        let doc = parse(&out).expect("valid json");
        let list = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert_eq!(list.len(), 6);

        // ts non-decreasing, in microseconds.
        let ts: Vec<f64> = list
            .iter()
            .map(|e| e.get("ts").and_then(JsonValue::as_f64).expect("ts"))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[0], 0.0);
        assert_eq!(*ts.last().expect("non-empty"), 0.01); // 10 ns = 0.01 µs

        // B/E balanced, with the zero-length span's B before its E.
        let phs: Vec<&str> = list
            .iter()
            .map(|e| e.get("ph").and_then(JsonValue::as_str).expect("ph"))
            .collect();
        assert_eq!(phs.iter().filter(|p| **p == "B").count(), 2);
        assert_eq!(phs.iter().filter(|p| **p == "E").count(), 2);
        let inner_b = list
            .iter()
            .position(|e| {
                e.get("name").and_then(JsonValue::as_str) == Some("inner")
                    && e.get("ph").and_then(JsonValue::as_str) == Some("B")
            })
            .expect("inner B");
        assert_eq!(
            list[inner_b + 1].get("ph").and_then(JsonValue::as_str),
            Some("E")
        );

        // Counter value lands in args under the counter's name.
        let counter = list
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .expect("counter event");
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("width"))
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn unmatched_begin_gets_synthetic_end() {
        // An engine that errored out of its chunk leaves a dangling B;
        // the exporter must still hand Perfetto a balanced trace.
        let events = vec![
            ev("phase.symbolic", EventKind::Begin, 0.0),
            ev("symbolic.chunk", EventKind::Begin, 2.0),
            ev("symbolic.chunk", EventKind::End, 4.0),
            ev("symbolic.chunk", EventKind::Begin, 6.0),
        ];
        let doc = parse(&chrome_trace(&events)).expect("valid json");
        let list = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("arr");
        let phs: Vec<&str> = list
            .iter()
            .map(|e| e.get("ph").and_then(JsonValue::as_str).expect("ph"))
            .collect();
        assert_eq!(phs.iter().filter(|p| **p == "B").count(), 3);
        assert_eq!(phs.iter().filter(|p| **p == "E").count(), 3);
        // Synthetic ends unwind innermost-first at the last timestamp.
        assert_eq!(
            list[4].get("name").and_then(JsonValue::as_str),
            Some("symbolic.chunk")
        );
        assert_eq!(
            list[5].get("name").and_then(JsonValue::as_str),
            Some("phase.symbolic")
        );
        assert_eq!(list[5].get("ts").and_then(JsonValue::as_f64), Some(0.006));
    }

    #[test]
    fn attrs_become_args() {
        let events = vec![TraceEvent {
            name: "numeric.level",
            cat: "level",
            kind: EventKind::End,
            ts_ns: 100.0,
            attrs: vec![
                ("width", AttrValue::U64(4)),
                ("mode", AttrValue::Sym("B")),
                ("frac", AttrValue::F64(0.5)),
            ],
        }];
        let doc = parse(&chrome_trace(&events)).expect("valid json");
        let e = &doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("arr")[0];
        let args = e.get("args").expect("args");
        assert_eq!(args.get("width").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(args.get("mode").and_then(JsonValue::as_str), Some("B"));
        assert_eq!(args.get("frac").and_then(JsonValue::as_f64), Some(0.5));
    }
}
