//! Live metrics: a dependency-free registry of counters, gauges, and
//! log-linear-bucket histograms.
//!
//! The [`Recorder`](crate::Recorder) answers "what happened in this run"
//! after the fact; the registry answers "what is happening right now" while
//! a service is taking traffic. Three design rules, in order:
//!
//! 1. **No allocation on the record path.** Handles ([`Counter`],
//!    [`Gauge`], [`Histogram`]) are `Arc`s handed out once by
//!    [`MetricsRegistry`]; recording is a handful of relaxed atomic ops on
//!    a fixed-size structure. The registry's name map is locked only at
//!    handle creation, never per sample.
//! 2. **Fixed size, mergeable.** A histogram is [`BUCKET_COUNT`] atomic
//!    counters in a log-linear (HDR-style) layout: values below
//!    [`SUB_BUCKETS`] get exact unit buckets, and every octave above is
//!    split into [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//!    quantization error by `1/SUB_BUCKETS` (6.25%). Two histograms (e.g.
//!    from two worker shards) merge by bucket-wise addition.
//! 3. **Lossless exposition.** [`MetricsRegistry::to_text`] /
//!    [`to_json`](MetricsRegistry::to_json) serialize the full bucket
//!    state (not pre-reduced quantiles), and [`from_text`]
//!    (MetricsRegistry::from_text) / [`from_json`]
//!    (MetricsRegistry::from_json) parse it back, so downstream tooling
//!    (`telemetry_check --slo`) can re-derive any quantile and merged
//!    views exactly.
//!
//! Label sets are flattened into the metric name by convention
//! (`service.wall_ns{tenant=t3,tier=warm}`); names must be non-empty and
//! free of whitespace so the text exposition stays unambiguous.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;

/// Version stamp carried by both exposition formats.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Sub-buckets per octave (`1 << SUB_BITS`). 16 sub-buckets bound the
/// relative quantization error of any recorded value by 1/16 = 6.25%.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
const SUB_BITS: u32 = 4;

/// Total bucket count: 16 exact unit buckets for values `0..16`, then 60
/// octaves (`2^4 ..= 2^63`) of 16 linear sub-buckets each. Index 975 is
/// the last bucket, holding values up to `u64::MAX`.
pub const BUCKET_COUNT: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// The bucket index a value lands in. Monotone in `v`, exact below
/// [`SUB_BUCKETS`], and always `< BUCKET_COUNT`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let octave = 63 - u64::from(v.leading_zeros()); // floor(log2 v) >= SUB_BITS
    let sub = (v >> (octave - u64::from(SUB_BITS))) & (SUB_BUCKETS - 1);
    ((octave - u64::from(SUB_BITS) + 1) * SUB_BUCKETS + sub) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `i` (the inverse of
/// [`bucket_index`]). `hi / lo < 1 + 1/SUB_BUCKETS` for every bucket, which
/// is the quantile error bound the proptest oracle checks.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return (i, i);
    }
    let octave = i / SUB_BUCKETS - 1 + u64::from(SUB_BITS);
    let sub = i % SUB_BUCKETS;
    let width = 1u64 << (octave - u64::from(SUB_BITS));
    let lo = (SUB_BUCKETS + sub) * width;
    // `lo + (width - 1)`: the last bucket's upper bound is exactly
    // `u64::MAX`, so the naive `lo + width - 1` would overflow first.
    (lo, lo + (width - 1))
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins instantaneous value (queue depth, in-flight jobs,
/// cache bytes). Signed so `add(-1)` works for decrement-on-completion.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-size log-linear histogram of non-negative values
/// (conventionally nanoseconds).
///
/// `record` is wait-free: one `fetch_add` into the value's bucket plus
/// count/sum/min/max maintenance, no allocation, no lock. Quantile
/// estimates return the **upper bound** of the covering bucket, so for a
/// true order statistic `v` the estimate lands in
/// `[v, v * (1 + 1/SUB_BUCKETS)]`.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a simulated/wall duration in ns, rounding to the unit grid.
    /// Negative and non-finite inputs clamp to zero (they indicate a
    /// caller bug, not a value worth corrupting the histogram over).
    pub fn record_f64(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.record(v.round() as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values (wraps only past `u64::MAX` total ns).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Exact mean, if any values were recorded.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Upper-bound estimate of the `q`-quantile (`q` clamped to `[0, 1]`):
    /// the upper bucket bound covering the order statistic of rank
    /// `max(1, ceil(q * count))`. Returns `None` on an empty histogram.
    ///
    /// Guarantee (checked by the proptest oracle): for the true rank-`r`
    /// order statistic `v`, the estimate is in
    /// `[v, v * (1 + 1/SUB_BUCKETS)]`, clamped above by [`Histogram::max`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let (_, hi) = bucket_bounds(i);
                return Some(hi.min(self.max.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }

    /// Bucket-wise addition of `other` into `self`. Associative and
    /// commutative up to atomic interleaving; quantiles of the merge match
    /// quantiles of the concatenated sample streams exactly (the layout is
    /// identical on both sides).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// A process-wide named collection of metrics.
///
/// `counter` / `gauge` / `histogram` are get-or-create: the first call
/// allocates the instrument under a short-lived lock, every later call
/// (and every clone of the returned `Arc`) records lock-free. Names share
/// one namespace per instrument kind; registering the same name as two
/// different kinds is fine (they serialize in separate sections).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn check_name(name: &str) {
    debug_assert!(
        !name.is_empty() && !name.contains(char::is_whitespace),
        "metric names must be non-empty and whitespace-free: {name:?}"
    );
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        check_name(name);
        let mut map = self.counters.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        check_name(name);
        let mut map = self.gauges.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        check_name(name);
        let mut map = self.histograms.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram `name`, if it was ever created.
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.histograms
            .lock()
            .expect("metrics lock")
            .get(name)
            .cloned()
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        self.histograms
            .lock()
            .expect("metrics lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Folds every instrument of `other` into `self` (creating missing
    /// names): counters and histogram buckets add, gauges take `other`'s
    /// value when present there.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        for (name, c) in other.counters.lock().expect("metrics lock").iter() {
            self.counter(name).add(c.get());
        }
        for (name, g) in other.gauges.lock().expect("metrics lock").iter() {
            self.gauge(name).set(g.get());
        }
        for (name, h) in other.histograms.lock().expect("metrics lock").iter() {
            self.histogram(name).merge_from(h);
        }
    }

    /// Lossless plain-text exposition (one instrument per line):
    ///
    /// ```text
    /// # gplu-metrics v1
    /// counter service.jobs_completed 500
    /// gauge service.queue_depth 3
    /// hist service.wall_ns{tenant=t0} count=2 sum=30 min=10 max=20 buckets=10:1,17:1
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("# gplu-metrics v{METRICS_SCHEMA_VERSION}\n");
        for (name, c) in self.counters.lock().expect("metrics lock").iter() {
            writeln!(out, "counter {name} {}", c.get()).expect("string write");
        }
        for (name, g) in self.gauges.lock().expect("metrics lock").iter() {
            writeln!(out, "gauge {name} {}", g.get()).expect("string write");
        }
        for (name, h) in self.histograms.lock().expect("metrics lock").iter() {
            let n = h.count();
            if n == 0 {
                writeln!(out, "hist {name} count=0").expect("string write");
                continue;
            }
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(i, c)| format!("{i}:{c}"))
                .collect();
            writeln!(
                out,
                "hist {name} count={n} sum={} min={} max={} buckets={}",
                h.sum(),
                h.min().expect("non-empty"),
                h.max().expect("non-empty"),
                buckets.join(",")
            )
            .expect("string write");
        }
        out
    }

    /// Parses [`to_text`](MetricsRegistry::to_text) output back into a
    /// registry (the exposition is lossless, so
    /// `from_text(to_text()) == self` state-wise).
    pub fn from_text(input: &str) -> Result<MetricsRegistry, String> {
        let reg = MetricsRegistry::new();
        let mut lines = input.lines();
        let header = lines.next().unwrap_or_default();
        let version = header
            .strip_prefix("# gplu-metrics v")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("bad metrics header: {header:?}"))?;
        if version > METRICS_SCHEMA_VERSION {
            return Err(format!("unsupported metrics schema v{version}"));
        }
        for line in lines.filter(|l| !l.trim().is_empty()) {
            let mut fields = line.split_whitespace();
            let kind = fields.next().unwrap_or_default();
            let name = fields
                .next()
                .ok_or_else(|| format!("metric line missing a name: {line:?}"))?;
            match kind {
                "counter" => {
                    let v = parse_field::<u64>(fields.next(), "counter value", line)?;
                    reg.counter(name).add(v);
                }
                "gauge" => {
                    let v = parse_field::<i64>(fields.next(), "gauge value", line)?;
                    reg.gauge(name).set(v);
                }
                "hist" => parse_hist_line(&reg, name, fields, line)?,
                other => return Err(format!("unknown metric kind {other:?} in {line:?}")),
            }
        }
        Ok(reg)
    }

    /// Lossless JSON exposition. Integer fields stay exact below 2^53
    /// (the shared [`JsonValue`] number model); every value this workspace
    /// records is far below that.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::obj();
        for (name, c) in self.counters.lock().expect("metrics lock").iter() {
            counters = counters.set(name, c.get());
        }
        let mut gauges = JsonValue::obj();
        for (name, g) in self.gauges.lock().expect("metrics lock").iter() {
            gauges = gauges.set(name, g.get());
        }
        let mut hists = JsonValue::obj();
        for (name, h) in self.histograms.lock().expect("metrics lock").iter() {
            hists = hists.set(name, histogram_json(h));
        }
        JsonValue::obj()
            .set("schema_version", METRICS_SCHEMA_VERSION)
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", hists)
    }

    /// Parses [`to_json`](MetricsRegistry::to_json) output back into a
    /// registry.
    pub fn from_json(v: &JsonValue) -> Result<MetricsRegistry, String> {
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("metrics json missing schema_version")?;
        if version > METRICS_SCHEMA_VERSION {
            return Err(format!("unsupported metrics schema v{version}"));
        }
        let reg = MetricsRegistry::new();
        for (name, val) in obj_fields(v.get("counters"), "counters")? {
            let n = val
                .as_u64()
                .ok_or_else(|| format!("counter {name} is not a u64"))?;
            reg.counter(name).add(n);
        }
        for (name, val) in obj_fields(v.get("gauges"), "gauges")? {
            let n = val
                .as_f64()
                .filter(|f| f.fract() == 0.0)
                .ok_or_else(|| format!("gauge {name} is not an integer"))?;
            reg.gauge(name).set(n as i64);
        }
        for (name, val) in obj_fields(v.get("histograms"), "histograms")? {
            histogram_from_json(&reg.histogram(name), name, val)?;
        }
        Ok(reg)
    }
}

fn obj_fields<'a>(
    v: Option<&'a JsonValue>,
    section: &str,
) -> Result<&'a [(String, JsonValue)], String> {
    match v {
        Some(JsonValue::Obj(fields)) => Ok(fields),
        _ => Err(format!("metrics json missing the {section} object")),
    }
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    what: &str,
    line: &str,
) -> Result<T, String> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("bad {what} in {line:?}"))
}

fn parse_hist_line<'a>(
    reg: &MetricsRegistry,
    name: &str,
    fields: impl Iterator<Item = &'a str>,
    line: &str,
) -> Result<(), String> {
    let h = reg.histogram(name);
    let mut count = None;
    let mut sum = 0u64;
    let mut min = u64::MAX;
    let mut max = 0u64;
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("bad hist field {field:?} in {line:?}"))?;
        match key {
            "count" => count = Some(parse_field::<u64>(Some(value), "hist count", line)?),
            "sum" => sum = parse_field(Some(value), "hist sum", line)?,
            "min" => min = parse_field(Some(value), "hist min", line)?,
            "max" => max = parse_field(Some(value), "hist max", line)?,
            "buckets" => {
                for pair in value.split(',').filter(|p| !p.is_empty()) {
                    let (i, c) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("bad bucket {pair:?} in {line:?}"))?;
                    let i: usize = parse_field(Some(i), "bucket index", line)?;
                    let c: u64 = parse_field(Some(c), "bucket count", line)?;
                    if i >= BUCKET_COUNT {
                        return Err(format!("bucket index {i} out of range in {line:?}"));
                    }
                    h.buckets[i].fetch_add(c, Ordering::Relaxed);
                }
            }
            other => return Err(format!("unknown hist field {other:?} in {line:?}")),
        }
    }
    let count = count.ok_or_else(|| format!("hist line missing count: {line:?}"))?;
    if count > 0 {
        h.count.fetch_add(count, Ordering::Relaxed);
        h.sum.fetch_add(sum, Ordering::Relaxed);
        h.min.fetch_min(min, Ordering::Relaxed);
        h.max.fetch_max(max, Ordering::Relaxed);
    }
    Ok(())
}

fn histogram_json(h: &Histogram) -> JsonValue {
    let buckets: Vec<JsonValue> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(i, c)| JsonValue::Arr(vec![JsonValue::from(i), JsonValue::from(c)]))
        .collect();
    JsonValue::obj()
        .set("count", h.count())
        .set("sum", h.sum())
        .set("min", h.min())
        .set("max", h.max())
        .set("buckets", buckets)
}

fn histogram_from_json(h: &Histogram, name: &str, v: &JsonValue) -> Result<(), String> {
    let field = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("histogram {name} missing {key}"))
    };
    let count = field("count")?;
    for pair in v
        .get("buckets")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("histogram {name} missing buckets"))?
    {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("histogram {name} has a malformed bucket pair"))?;
        let (i, c) = (
            pair[0]
                .as_u64()
                .ok_or_else(|| format!("histogram {name} bucket index"))? as usize,
            pair[1]
                .as_u64()
                .ok_or_else(|| format!("histogram {name} bucket count"))?,
        );
        if i >= BUCKET_COUNT {
            return Err(format!("histogram {name} bucket index {i} out of range"));
        }
        h.buckets[i].fetch_add(c, Ordering::Relaxed);
    }
    if count > 0 {
        h.count.fetch_add(count, Ordering::Relaxed);
        h.sum.fetch_add(field("sum")?, Ordering::Relaxed);
        h.min.fetch_min(field("min")?, Ordering::Relaxed);
        h.max.fetch_max(field("max")?, Ordering::Relaxed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range_at_boundaries() {
        let mut last = 0usize;
        for octave in 0..64u32 {
            for v in [1u64 << octave, (1u64 << octave) + 1, (1u64 << octave) - 1] {
                let i = bucket_index(v);
                assert!(i < BUCKET_COUNT, "v={v} i={i}");
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= v && v <= hi, "v={v} not in [{lo}, {hi}]");
            }
            last = last.max(bucket_index(1u64 << octave));
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(0), 0);
        // Exact unit buckets below SUB_BUCKETS, contiguous handoff at 16.
        for v in 0..2 * SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
        }
    }

    #[test]
    fn quantiles_track_exact_small_values() {
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.mean(), Some(5.5));
    }

    #[test]
    fn counters_and_gauges_round_trip_both_expositions() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs").add(42);
        reg.gauge("depth").set(-3);
        reg.histogram("lat{tenant=t0}").record(1000);
        reg.histogram("empty"); // created, never recorded

        let text = reg.to_text();
        let back = MetricsRegistry::from_text(&text).expect("parses");
        assert_eq!(back.to_text(), text);

        let json = reg.to_json();
        let back = MetricsRegistry::from_json(&json).expect("parses");
        assert_eq!(back.to_json().to_compact(), json.to_compact());
        assert_eq!(back.counter("jobs").get(), 42);
        assert_eq!(back.gauge("depth").get(), -3);
        assert_eq!(back.histogram("lat{tenant=t0}").quantile(1.0), Some(1000));
        assert_eq!(back.histogram("empty").count(), 0);
    }

    #[test]
    fn merge_adds_counts_and_preserves_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
        let est = a.quantile(1.0).expect("non-empty");
        assert!(est >= 1_000_000 && est as f64 <= 1_000_000.0 * (1.0 + 1.0 / 16.0));
    }
}
