//! Plain-text metrics dump: span duration histograms and counter totals.
//!
//! The human-facing counterpart of the machine-readable exporters — meant
//! for terminals and CI logs, behind the CLI's `--metrics` flag.

use crate::event::{EventKind, TraceEvent};

#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

#[derive(Debug, Default, Clone)]
struct CounterAgg {
    samples: u64,
    last: f64,
    max: f64,
}

/// Renders an aggregate view of an event log: per-span-name duration
/// statistics (count / total / mean / min / max, matched by pairing each
/// `End` with the innermost open `Begin` of the same name), counter
/// last/max values, and instant-event counts.
pub fn metrics_text(events: &[TraceEvent]) -> String {
    // name -> stack of open begin timestamps; aggregation keyed by name.
    let mut open: Vec<(&'static str, f64)> = Vec::new();
    let mut spans: Vec<(&'static str, SpanAgg)> = Vec::new();
    let mut counters: Vec<(&'static str, CounterAgg)> = Vec::new();
    let mut instants: Vec<(&'static str, u64)> = Vec::new();

    for e in events {
        match e.kind {
            EventKind::Begin => open.push((e.name, e.ts_ns)),
            EventKind::End => {
                let Some(idx) = open.iter().rposition(|(n, _)| *n == e.name) else {
                    continue; // unbalanced End: skip rather than panic
                };
                let (_, begin_ts) = open.remove(idx);
                let dur = (e.ts_ns - begin_ts).max(0.0);
                let agg = find_or_insert(&mut spans, e.name);
                if agg.count == 0 {
                    agg.min_ns = dur;
                    agg.max_ns = dur;
                } else {
                    agg.min_ns = agg.min_ns.min(dur);
                    agg.max_ns = agg.max_ns.max(dur);
                }
                agg.count += 1;
                agg.total_ns += dur;
            }
            EventKind::Instant => match instants.iter_mut().find(|(n, _)| *n == e.name) {
                Some((_, c)) => *c += 1,
                None => instants.push((e.name, 1)),
            },
            EventKind::Counter(v) => {
                let agg = find_or_insert(&mut counters, e.name);
                if agg.samples == 0 {
                    agg.max = v;
                } else {
                    agg.max = agg.max.max(v);
                }
                agg.samples += 1;
                agg.last = v;
            }
        }
    }

    let mut out = String::new();
    out.push_str("spans (simulated time):\n");
    if spans.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, a) in &spans {
        out.push_str(&format!(
            "  {:<24} count {:>5}  total {:>12}  mean {:>10}  min {:>10}  max {:>10}\n",
            name,
            a.count,
            fmt_ns(a.total_ns),
            fmt_ns(a.total_ns / a.count as f64),
            fmt_ns(a.min_ns),
            fmt_ns(a.max_ns),
        ));
    }
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, a) in &counters {
            out.push_str(&format!(
                "  {:<24} samples {:>5}  last {:>12}  max {:>12}\n",
                name, a.samples, a.last, a.max
            ));
        }
    }
    if !instants.is_empty() {
        out.push_str("instants:\n");
        for (name, c) in &instants {
            out.push_str(&format!("  {name:<24} count {c:>5}\n"));
        }
    }
    out
}

fn find_or_insert<'a, T: Default>(
    list: &'a mut Vec<(&'static str, T)>,
    name: &'static str,
) -> &'a mut T {
    if let Some(idx) = list.iter().position(|(n, _)| *n == name) {
        return &mut list[idx].1;
    }
    list.push((name, T::default()));
    &mut list.last_mut().expect("just pushed").1
}

/// Human-scaled duration: picks ns/µs/ms/s.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: EventKind, ts_ns: f64) -> TraceEvent {
        TraceEvent {
            name,
            cat: "t",
            kind,
            ts_ns,
            attrs: vec![],
        }
    }

    #[test]
    fn aggregates_spans_counters_instants() {
        let events = vec![
            ev("phase.numeric", EventKind::Begin, 0.0),
            ev("numeric.level", EventKind::Begin, 0.0),
            ev("numeric.level", EventKind::End, 1_000.0),
            ev("numeric.level", EventKind::Begin, 1_000.0),
            ev("numeric.level", EventKind::End, 4_000.0),
            ev("phase.numeric", EventKind::End, 4_000.0),
            ev("level.width", EventKind::Counter(2.0), 1_000.0),
            ev("level.width", EventKind::Counter(5.0), 4_000.0),
            ev("recovery", EventKind::Instant, 4_000.0),
        ];
        let text = metrics_text(&events);
        assert!(text.contains("numeric.level"), "{text}");
        assert!(text.contains("count     2"), "{text}");
        assert!(text.contains("4.000us"), "{text}"); // phase total
        assert!(text.contains("level.width"), "{text}");
        assert!(text.contains("recovery"), "{text}");
    }

    #[test]
    fn tolerates_unbalanced_events() {
        // A dangling End and a dangling Begin must not panic.
        let events = vec![ev("a", EventKind::End, 5.0), ev("b", EventKind::Begin, 6.0)];
        let text = metrics_text(&events);
        assert!(text.contains("(none)"), "{text}");
    }
}
