//! # gplu-trace
//!
//! Structured run telemetry for the `gplu` pipeline: a lightweight,
//! dependency-free span/event recorder threaded through every phase of the
//! factorization, plus three exporters.
//!
//! The paper's entire evaluation (Figures 4–6, Tables 3–4) is phase- and
//! level-resolved accounting; this crate makes that accounting a
//! first-class, machine-readable artifact instead of a hand-formatted
//! summary string:
//!
//! * [`TraceSink`] — the recording interface the engines talk to. Events
//!   carry a static name, a category, a monotonic **simulated** timestamp
//!   (nanoseconds, the pipeline's [`SimTime`] clock), and key=value
//!   attributes.
//! * [`NoopSink`] — the zero-cost disabled sink: `enabled()` is `false`,
//!   every emission is a no-op, and because attributes are built on the
//!   caller's stack the hot path performs **zero heap allocations** when
//!   tracing is off.
//! * [`Recorder`] — the enabled sink: appends owned [`TraceEvent`]s under a
//!   mutex (engine orchestration is serial; kernels never emit from inside
//!   blocks).
//! * [`chrome::chrome_trace`] — Chrome trace-event JSON (loadable in
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)): a
//!   factorization renders as a flamegraph over simulated time.
//! * [`metrics::metrics_text`] — plain-text span histograms and counter
//!   totals for terminals and CI logs.
//! * [`json`] — the hand-rolled JSON value builder + minimal parser shared
//!   by the exporters, `gplu-core`'s versioned run report, and the
//!   validation tooling (no serde in the workspace).
//! * [`registry`] — live metrics for long-running services: a
//!   [`MetricsRegistry`] of counters, gauges, and mergeable log-linear
//!   histograms with lossless text/JSON exposition (the post-hoc exporters
//!   above answer "what happened"; the registry answers "what is
//!   happening").
//!
//! [`SimTime`]: https://docs.rs/gplu-sim

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod sink;

pub use chrome::chrome_trace;
pub use event::{AttrValue, EventKind, TraceEvent};
pub use json::JsonValue;
pub use metrics::metrics_text;
pub use recorder::Recorder;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, METRICS_SCHEMA_VERSION};
pub use sink::{NoopSink, TraceSink, NOOP};
