//! Property coverage for the hand-rolled JSON layer: everything the
//! writer can emit, the parser must read back **exactly** — arbitrary
//! escape-heavy strings, number edge cases, and randomly-shaped value
//! trees — and hostile nesting depth is a typed error, not a stack
//! overflow.

use gplu_trace::json::{parse, JsonValue, MAX_DEPTH};
use proptest::prelude::*;

/// Characters chosen to stress every escape path in the writer: the
/// two mandatory escapes, the shorthand control escapes, raw control
/// bytes (forced through `\u00xx`), multi-byte UTF-8, and plain ASCII.
const CHAR_POOL: &[char] = &[
    '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{0}', '\u{1}', '\u{1f}', ' ', 'a', 'Z',
    '0', '{', '}', '[', ']', ':', ',', 'é', 'ß', '中', '🦀', '\u{fffd}', '\u{2028}', '\u{e000}',
];

fn arb_string(rng: &mut TestRng, max_len: usize) -> String {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| CHAR_POOL[rng.below(CHAR_POOL.len() as u64) as usize])
        .collect()
}

/// A random value tree. `budget` bounds total nodes, so the shape (and
/// the nesting) varies case to case without blowing up.
fn arb_value(rng: &mut TestRng, budget: &mut u32) -> JsonValue {
    *budget = budget.saturating_sub(1);
    let leaf_only = *budget == 0;
    match rng.below(if leaf_only { 5 } else { 7 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.below(2) == 0),
        2 => JsonValue::Num(rng.below(1 << 53) as f64 - (1u64 << 52) as f64),
        3 => JsonValue::Num(rng.next_f64() * 1e12 - 5e11),
        4 => JsonValue::Str(arb_string(rng, 12)),
        5 => {
            let n = rng.below(4);
            JsonValue::Arr((0..n).map(|_| arb_value(rng, budget)).collect())
        }
        _ => {
            let n = rng.below(4);
            JsonValue::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("{}-{i}", arb_string(rng, 6)),
                            arb_value(rng, budget),
                        )
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn escape_heavy_strings_round_trip(
        s in Just(()).prop_perturb(|(), mut rng| arb_string(&mut rng, 40)),
    ) {
        let v = JsonValue::Str(s.clone());
        for text in [v.to_compact(), v.to_pretty()] {
            let back = parse(&text)
                .map_err(|e| TestCaseError::fail(format!("{e} in {text:?}")))?;
            prop_assert_eq!(back.as_str(), Some(s.as_str()), "through {:?}", text);
        }
    }

    #[test]
    fn finite_numbers_round_trip_bit_exactly(
        bits in 0u64..=u64::MAX,
        small in -1000i64..1000,
        exp in 0u32..616,
    ) {
        // Three regimes: arbitrary bit patterns (subnormals, extremes),
        // small integers, and powers of ten across the exponent range.
        let candidates = [
            f64::from_bits(bits),
            small as f64,
            format!("1e{}", exp as i64 - 308).parse::<f64>().expect("valid"),
        ];
        for x in candidates.into_iter().filter(|x| x.is_finite()) {
            let text = JsonValue::Num(x).to_compact();
            let back = parse(&text)
                .map_err(|e| TestCaseError::fail(format!("{e} in {text:?}")))?
                .as_f64()
                .ok_or_else(|| TestCaseError::fail(format!("non-number from {text:?}")))?;
            prop_assert_eq!(
                back.to_bits(), x.to_bits(),
                "{} -> {:?} -> {}", x, text, back
            );
        }
    }

    #[test]
    fn arbitrary_value_trees_round_trip(
        v in Just(()).prop_perturb(|(), mut rng| arb_value(&mut rng, &mut 40)),
    ) {
        for text in [v.to_compact(), v.to_pretty()] {
            let back = parse(&text)
                .map_err(|e| TestCaseError::fail(format!("{e} in {text:?}")))?;
            prop_assert_eq!(&back, &v, "through {:?}", text);
        }
    }

    #[test]
    fn nesting_below_the_limit_parses_above_it_errors(
        depth in 1usize..80,
    ) {
        // Shallow nesting always works…
        let doc = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        prop_assert!(parse(&doc).is_ok(), "depth {} rejected", depth);
        // …and the same shape past MAX_DEPTH is a typed error.
        let deep = MAX_DEPTH + depth;
        let doc = format!("{}0{}", "[".repeat(deep), "]".repeat(deep));
        let err = parse(&doc).expect_err("over-deep document must be rejected");
        prop_assert!(err.msg.contains("nesting"), "got: {}", err);
    }
}

#[test]
fn pathological_depth_is_an_error_not_a_crash() {
    // An unclosed million-bracket prefix: the overflow guard must fire
    // long before the recursion does.
    let doc = "[".repeat(1_000_000);
    let err = parse(&doc).expect_err("must be rejected");
    assert!(err.msg.contains("nesting"), "got: {err}");

    // Mixed object/array nesting counts against the same budget.
    let deep = (MAX_DEPTH / 2) + 300;
    let doc = format!("{}1{}", r#"{"k":["#.repeat(deep), "]}".repeat(deep));
    let err = parse(&doc).expect_err("must be rejected");
    assert!(err.msg.contains("nesting"), "got: {err}");
}
