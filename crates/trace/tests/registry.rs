//! Property coverage for the live metrics registry: quantile estimates
//! against a sorted-vector oracle (the 1/16 relative-error contract),
//! merge associativity, and lossless round-trips through both exposition
//! formats.

use gplu_trace::registry::{bucket_bounds, bucket_index, BUCKET_COUNT, SUB_BUCKETS};
use gplu_trace::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Values spanning every histogram regime: the exact unit buckets, the
/// first split octaves, realistic latencies (µs–s in ns), and a huge
/// tail. Capped at 2^52 so sample sums stay in `u64` and every field
/// survives the JSON number model (`f64`, exact below 2^53) bit-exactly.
fn arb_values(rng: &mut TestRng, max_len: usize) -> Vec<u64> {
    let len = 1 + rng.below(max_len as u64) as usize;
    (0..len)
        .map(|_| match rng.below(4) {
            0 => rng.below(64),
            1 => rng.below(1 << 16),
            2 => 1_000 + rng.below(10_000_000_000),
            _ => rng.below(1 << 52),
        })
        .collect()
}

/// The oracle the histogram is approximating: the true order statistic of
/// rank `max(1, ceil(q * n))` in the sorted sample.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantile_estimates_bound_the_sorted_oracle(
        values in Just(()).prop_perturb(|(), mut rng| arb_values(&mut rng, 200)),
        q in Just(()).prop_perturb(|(), mut rng| rng.next_f64()),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), sorted.first().copied());
        prop_assert_eq!(h.max(), sorted.last().copied());
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());

        for q in [q, 0.0, 0.5, 0.95, 0.99, 1.0] {
            let truth = oracle_quantile(&sorted, q);
            let est = h.quantile(q).expect("non-empty");
            // The contract: est ∈ [truth, truth * (1 + 1/SUB_BUCKETS)],
            // clamped above by the exact max.
            prop_assert!(est >= truth.min(h.max().expect("non-empty")),
                "q={} est={} truth={}", q, est, truth);
            prop_assert!(
                est as f64 <= truth as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64),
                "q={} est={} truth={}", q, est, truth
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_the_concatenated_stream(
        a in Just(()).prop_perturb(|(), mut rng| arb_values(&mut rng, 80)),
        b in Just(()).prop_perturb(|(), mut rng| arb_values(&mut rng, 80)),
        c in Just(()).prop_perturb(|(), mut rng| arb_values(&mut rng, 80)),
    ) {
        let fill = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = fill(&a);
        left.merge_from(&fill(&b));
        left.merge_from(&fill(&c));
        // a ⊕ (b ⊕ c)
        let bc = fill(&b);
        bc.merge_from(&fill(&c));
        let right = fill(&a);
        right.merge_from(&bc);
        // one histogram over the concatenated stream
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = fill(&all);

        for h in [&left, &right] {
            prop_assert_eq!(h.count(), direct.count());
            prop_assert_eq!(h.sum(), direct.sum());
            prop_assert_eq!(h.min(), direct.min());
            prop_assert_eq!(h.max(), direct.max());
            prop_assert_eq!(h.nonzero_buckets(), direct.nonzero_buckets());
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                prop_assert_eq!(h.quantile(q), direct.quantile(q), "q={}", q);
            }
        }
    }

    #[test]
    fn expositions_round_trip_losslessly(
        values in Just(()).prop_perturb(|(), mut rng| arb_values(&mut rng, 120)),
        jobs in 0u64..1 << 40,
        depth in -1000i64..1000,
    ) {
        let reg = MetricsRegistry::new();
        reg.counter("service.jobs_completed").add(jobs);
        reg.gauge("service.queue_depth").set(depth);
        reg.histogram("idle"); // registered but never recorded
        let h = reg.histogram("service.wall_ns{tenant=t0,tier=warm}");
        for &v in &values {
            h.record(v);
        }

        // text → registry → text is a fixed point…
        let text = reg.to_text();
        let from_text = MetricsRegistry::from_text(&text)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(from_text.to_text(), text.clone());

        // …and json → registry → json likewise (through the parser too).
        let json = reg.to_json();
        let parsed = gplu_trace::json::parse(&json.to_pretty())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let from_json = MetricsRegistry::from_json(&parsed)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(from_json.to_json().to_compact(), json.to_compact());

        // Both reconstructions preserve the live state, not just the text.
        for back in [from_text, from_json] {
            prop_assert_eq!(back.counter("service.jobs_completed").get(), jobs);
            prop_assert_eq!(back.gauge("service.queue_depth").get(), depth);
            let hh = back.histogram("service.wall_ns{tenant=t0,tier=warm}");
            prop_assert_eq!(hh.count(), h.count());
            prop_assert_eq!(hh.nonzero_buckets(), h.nonzero_buckets());
            for q in [0.5, 0.95, 0.99] {
                prop_assert_eq!(hh.quantile(q), h.quantile(q), "q={}", q);
            }
            prop_assert_eq!(back.histogram("idle").count(), 0);
        }
    }

    #[test]
    fn bucket_layout_is_a_monotone_partition(
        v in 0u64..=u64::MAX,
    ) {
        // Every value lands in a bucket that contains it…
        let i = bucket_index(v);
        prop_assert!(i < BUCKET_COUNT);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "v={} outside [{}, {}]", v, lo, hi);
        // …whose relative width honors the 1/16 error bound…
        if lo >= SUB_BUCKETS {
            prop_assert!(
                (hi - lo + 1) as f64 / lo as f64 <= 1.0 / SUB_BUCKETS as f64,
                "bucket {} too wide: [{}, {}]", i, lo, hi
            );
        }
        // …and adjacent buckets tile the value axis with no gaps.
        if i + 1 < BUCKET_COUNT {
            let (next_lo, _) = bucket_bounds(i + 1);
            prop_assert_eq!(next_lo, hi + 1, "gap after bucket {}", i);
        }
    }
}

#[test]
fn registry_merge_folds_every_instrument_kind() {
    let a = MetricsRegistry::new();
    let b = MetricsRegistry::new();
    a.counter("n").add(2);
    b.counter("n").add(3);
    b.counter("only_b").add(7);
    a.gauge("g").set(1);
    b.gauge("g").set(9);
    a.histogram("h").record(10);
    b.histogram("h").record(20);

    a.merge_from(&b);
    assert_eq!(a.counter("n").get(), 5);
    assert_eq!(a.counter("only_b").get(), 7);
    assert_eq!(a.gauge("g").get(), 9, "gauges are last-writer-wins");
    assert_eq!(a.histogram("h").count(), 2);
    assert_eq!(a.histogram("h").sum(), 30);
}

#[test]
fn malformed_expositions_are_typed_errors() {
    assert!(MetricsRegistry::from_text("").is_err());
    assert!(MetricsRegistry::from_text("# gplu-metrics v999\n").is_err());
    assert!(MetricsRegistry::from_text("# gplu-metrics v1\nwidget x 1\n").is_err());
    assert!(MetricsRegistry::from_text("# gplu-metrics v1\nhist h sum=1\n").is_err());
    assert!(
        MetricsRegistry::from_text("# gplu-metrics v1\nhist h count=1 buckets=99999:1\n").is_err()
    );
    let junk = gplu_trace::json::parse(r#"{"schema_version":1}"#).expect("parses");
    assert!(MetricsRegistry::from_json(&junk).is_err());
}
