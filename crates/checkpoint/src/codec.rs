//! Little-endian binary encoding for snapshot section payloads.
//!
//! Everything in a snapshot is built from a handful of primitives —
//! fixed-width integers, `f64` bit patterns (so `-0.0`, infinities and
//! NaNs round-trip exactly, a requirement for bit-identical resume),
//! length-prefixed byte strings and vectors — plus typed helpers for the
//! sparse-matrix structures the pipeline persists.

use crate::snapshot::CheckpointError;
use gplu_sparse::{Csc, Csr, Idx, Permutation};

/// Encoder: appends primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finishes encoding and returns the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` vector.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    /// Appends a length-prefixed `u64` vector.
    pub fn vec_u64(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends a length-prefixed `usize` vector (as `u64`s).
    pub fn vec_usize(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }

    /// Appends a length-prefixed `f64` vector, bit-exact.
    pub fn vec_f64(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
}

fn corrupt(what: &str) -> CheckpointError {
    CheckpointError::Corrupt(format!("section payload truncated or malformed: {what}"))
}

/// Guards length prefixes against truncated/garbage payloads: a claimed
/// element count may not exceed the bytes actually remaining.
fn check_len(
    claimed: u64,
    elem_bytes: usize,
    remaining: usize,
    what: &str,
) -> Result<usize, CheckpointError> {
    let need = claimed
        .checked_mul(elem_bytes as u64)
        .ok_or_else(|| corrupt(what))?;
    if need > remaining as u64 {
        return Err(corrupt(what));
    }
    Ok(claimed as usize)
}

/// Decoder: a cursor over a section payload. Every read is bounds-checked
/// and fails with [`CheckpointError::Corrupt`] instead of panicking —
/// snapshots are untrusted input (truncated writes, bit rot).
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(corrupt(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| corrupt(what))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, CheckpointError> {
        let len = self.u64(what)?;
        let len = check_len(len, 1, self.remaining(), what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(what))
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn vec_u32(&mut self, what: &str) -> Result<Vec<u32>, CheckpointError> {
        let len = self.u64(what)?;
        let len = check_len(len, 4, self.remaining(), what)?;
        (0..len).map(|_| self.u32(what)).collect()
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn vec_u64(&mut self, what: &str) -> Result<Vec<u64>, CheckpointError> {
        let len = self.u64(what)?;
        let len = check_len(len, 8, self.remaining(), what)?;
        (0..len).map(|_| self.u64(what)).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn vec_usize(&mut self, what: &str) -> Result<Vec<usize>, CheckpointError> {
        let len = self.u64(what)?;
        let len = check_len(len, 8, self.remaining(), what)?;
        (0..len).map(|_| self.usize(what)).collect()
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn vec_f64(&mut self, what: &str) -> Result<Vec<f64>, CheckpointError> {
        let len = self.u64(what)?;
        let len = check_len(len, 8, self.remaining(), what)?;
        (0..len).map(|_| self.f64(what)).collect()
    }
}

/// Encodes a CSR matrix (dimensions, structure, bit-exact values).
pub fn encode_csr(e: &mut Enc, a: &Csr) {
    e.usize(a.n_rows());
    e.usize(a.n_cols());
    e.vec_usize(&a.row_ptr);
    e.vec_u32(&a.col_idx);
    e.vec_f64(&a.vals);
}

/// Decodes a CSR matrix, re-validating its structural invariants so a
/// corrupted payload cannot smuggle an inconsistent matrix past the
/// checksum (e.g. a valid checksum over garbage written by a buggy tool).
pub fn decode_csr(d: &mut Dec<'_>) -> Result<Csr, CheckpointError> {
    let n_rows = d.usize("csr.n_rows")?;
    let n_cols = d.usize("csr.n_cols")?;
    let row_ptr = d.vec_usize("csr.row_ptr")?;
    let col_idx: Vec<Idx> = d.vec_u32("csr.col_idx")?;
    let vals = d.vec_f64("csr.vals")?;
    // Pre-validate what `Csr::new` assumes rather than checks: offsets
    // must be globally monotone and span `col_idx` before it may slice.
    let spans = row_ptr.first() == Some(&0)
        && *row_ptr.last().unwrap_or(&0) == col_idx.len()
        && row_ptr.windows(2).all(|w| w[0] <= w[1])
        && n_rows.checked_add(1) == Some(row_ptr.len());
    if !spans {
        return Err(CheckpointError::Corrupt(
            "decoded CSR invalid: malformed row offsets".into(),
        ));
    }
    Csr::new(n_rows, n_cols, row_ptr, col_idx, vals)
        .map_err(|e| CheckpointError::Corrupt(format!("decoded CSR invalid: {e}")))
}

/// Encodes a CSC matrix (dimensions, structure, bit-exact values).
pub fn encode_csc(e: &mut Enc, a: &Csc) {
    e.usize(a.n_rows());
    e.usize(a.n_cols());
    e.vec_usize(&a.col_ptr);
    e.vec_u32(&a.row_idx);
    e.vec_f64(&a.vals);
}

/// Decodes a CSC matrix through `Csc::new`, which re-validates offsets,
/// bounds and the sorted-rows invariant — a checksum-passing payload
/// written by a buggy tool still cannot smuggle in a malformed pattern.
pub fn decode_csc(d: &mut Dec<'_>) -> Result<Csc, CheckpointError> {
    let n_rows = d.usize("csc.n_rows")?;
    let n_cols = d.usize("csc.n_cols")?;
    let col_ptr = d.vec_usize("csc.col_ptr")?;
    let row_idx: Vec<Idx> = d.vec_u32("csc.row_idx")?;
    let vals = d.vec_f64("csc.vals")?;
    Csc::new(n_rows, n_cols, col_ptr, row_idx, vals)
        .map_err(|e| CheckpointError::Corrupt(format!("decoded CSC invalid: {e}")))
}

/// Encodes a permutation (forward map).
pub fn encode_perm(e: &mut Enc, p: &Permutation) {
    e.vec_u32(p.as_slice());
}

/// Decodes a permutation, re-validating bijectivity.
pub fn decode_perm(d: &mut Dec<'_>) -> Result<Permutation, CheckpointError> {
    let fwd = d.vec_u32("perm.forward")?;
    Permutation::from_forward(fwd)
        .map_err(|e| CheckpointError::Corrupt(format!("decoded permutation invalid: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(f64::NEG_INFINITY);
        e.str("héllo");
        e.vec_u32(&[1, 2, 3]);
        e.vec_f64(&[f64::NAN, 1.5]);
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64("c").unwrap(), u64::MAX);
        assert_eq!(d.usize("d").unwrap(), 12345);
        let z = d.f64("e").unwrap();
        assert!(z == 0.0 && z.is_sign_negative(), "-0.0 must survive");
        assert_eq!(d.f64("f").unwrap(), f64::NEG_INFINITY);
        assert_eq!(d.str("g").unwrap(), "héllo");
        assert_eq!(d.vec_u32("h").unwrap(), vec![1, 2, 3]);
        let v = d.vec_f64("i").unwrap();
        assert!(v[0].is_nan() && v[1] == 1.5);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = Enc::new();
        e.vec_u64(&[1, 2, 3]);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.vec_u64("v").is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_up_front() {
        // A length prefix claiming 2^60 elements must not attempt a huge
        // allocation; the remaining-bytes bound catches it first.
        let mut e = Enc::new();
        e.u64(1 << 60);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).vec_f64("v").is_err());
        assert!(Dec::new(&bytes).str("s").is_err());
    }

    #[test]
    fn csr_and_perm_round_trip_and_validate() {
        let a = Csr::new(
            2,
            2,
            vec![0, 2, 3],
            vec![0, 1, 1],
            vec![1.0, -0.0, f64::MIN_POSITIVE],
        )
        .unwrap();
        let mut e = Enc::new();
        encode_csr(&mut e, &a);
        let p = Permutation::from_forward(vec![1, 0]).unwrap();
        encode_perm(&mut e, &p);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let a2 = decode_csr(&mut d).unwrap();
        assert_eq!(a2.row_ptr, a.row_ptr);
        assert_eq!(a2.col_idx, a.col_idx);
        assert_eq!(a2.vals[0].to_bits(), 1.0f64.to_bits());
        assert_eq!(a2.vals[1].to_bits(), (-0.0f64).to_bits());
        let p2 = decode_perm(&mut d).unwrap();
        assert_eq!(p2.as_slice(), p.as_slice());

        // A structurally invalid CSR is rejected even though it decodes.
        let mut e = Enc::new();
        e.usize(2);
        e.usize(2);
        e.vec_usize(&[0, 5, 1]); // non-monotone row_ptr
        e.vec_u32(&[0]);
        e.vec_f64(&[1.0]);
        let bytes = e.into_bytes();
        assert!(decode_csr(&mut Dec::new(&bytes)).is_err());
    }
}
