//! Crash-consistent snapshot storage.
//!
//! The durability protocol is the classic one production databases use
//! for their checkpoint files:
//!
//! 1. the snapshot is written to `snap-<seq>.ckpt.tmp`,
//! 2. the file is fsynced, then atomically renamed to `snap-<seq>.ckpt`,
//! 3. the directory is fsynced so the rename itself is durable,
//! 4. `manifest.json` — listing every snapshot with its size and whole-file
//!    XXH64 — is rewritten through the same tmp/fsync/rename dance.
//!
//! A crash at any point leaves either the previous state or the new state,
//! never a torn one: a torn `.tmp` is simply ignored, a torn snapshot that
//! somehow got renamed fails its checksums and is skipped. Loading walks
//! the candidates newest-first and returns the first snapshot that passes
//! all verification (**latest-valid-wins**); if candidates exist but none
//! verifies, that is a hard [`CheckpointError::Corrupt`] — resuming from
//! nothing when progress was supposedly saved must be an explicit,
//! operator-visible decision, not a silent restart.

use crate::hash::xxh64;
use crate::snapshot::{CheckpointError, Snapshot};
use gplu_trace::{json, JsonValue};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Manifest schema version.
pub const MANIFEST_VERSION: u64 = 1;

/// Manifest file name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Monotone snapshot sequence number.
    pub seq: u64,
    /// File name relative to the checkpoint directory.
    pub file: String,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// XXH64 of the whole snapshot file.
    pub xxh64: u64,
}

/// A checkpoint directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn snap_file_name(seq: u64) -> String {
    format!("snap-{seq:08}.ckpt")
}

fn seq_of_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Writes `data` to `path` durably: tmp file, fsync, atomic rename,
/// directory fsync.
pub(crate) fn write_atomic(dir: &Path, path: &Path, data: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync can fail on exotic
    // filesystems; that is a durability (not correctness) concern, so a
    // failure here still surfaces as Io.
    File::open(dir)?.sync_all()?;
    Ok(())
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: &Path) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably writes `snap` under sequence number `seq` and rewrites the
    /// manifest. Returns the number of snapshot bytes written.
    pub fn save(&self, seq: u64, snap: &Snapshot) -> Result<u64, CheckpointError> {
        let bytes = snap.to_bytes();
        let path = self.dir.join(snap_file_name(seq));
        write_atomic(&self.dir, &path, &bytes)?;
        self.rewrite_manifest()?;
        Ok(bytes.len() as u64)
    }

    /// Rebuilds the manifest from the snapshot files actually on disk —
    /// the directory is the source of truth; the manifest is its durable,
    /// checksummed index.
    fn rewrite_manifest(&self) -> Result<(), CheckpointError> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(seq) = seq_of_file_name(&name) else {
                continue;
            };
            let data = fs::read(entry.path())?;
            entries.push(ManifestEntry {
                seq,
                file: name,
                bytes: data.len() as u64,
                xxh64: xxh64(&data, 0),
            });
        }
        entries.sort_by_key(|e| e.seq);
        let mut doc = String::new();
        doc.push_str(&format!(
            "{{\n  \"schema_version\": {MANIFEST_VERSION},\n  \"entries\": ["
        ));
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!(
                "\n    {{\"seq\": {}, \"file\": \"{}\", \"bytes\": {}, \"xxh64\": \"{:016x}\"}}",
                e.seq, e.file, e.bytes, e.xxh64
            ));
        }
        doc.push_str("\n  ]\n}\n");
        write_atomic(&self.dir, &self.dir.join(MANIFEST_FILE), doc.as_bytes())
    }

    /// Parses the manifest. `Ok(None)` when no manifest exists yet.
    pub fn read_manifest(&self) -> Result<Option<Vec<ManifestEntry>>, CheckpointError> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let doc = json::parse(&text)
            .map_err(|e| CheckpointError::Corrupt(format!("manifest.json: {e}")))?;
        parse_manifest(&doc)
            .map(Some)
            .map_err(|e| CheckpointError::Corrupt(format!("manifest.json: {e}")))
    }

    /// Candidate snapshots, newest first: from the manifest when present
    /// and parseable, otherwise by scanning the directory (a corrupt
    /// manifest must not hide intact snapshots).
    fn candidates(&self) -> Result<Vec<(u64, PathBuf, Option<ManifestEntry>)>, CheckpointError> {
        let mut out: Vec<(u64, PathBuf, Option<ManifestEntry>)> = match self.read_manifest() {
            Ok(Some(entries)) => entries
                .into_iter()
                .map(|e| (e.seq, self.dir.join(&e.file), Some(e)))
                .collect(),
            Ok(None) | Err(_) => {
                let mut v = Vec::new();
                if let Ok(rd) = fs::read_dir(&self.dir) {
                    for entry in rd.flatten() {
                        let name = entry.file_name().to_string_lossy().into_owned();
                        if let Some(seq) = seq_of_file_name(&name) {
                            v.push((seq, entry.path(), None));
                        }
                    }
                }
                v
            }
        };
        out.sort_by_key(|(seq, _, _)| std::cmp::Reverse(*seq));
        Ok(out)
    }

    /// Loads the newest snapshot that passes every check (whole-file hash
    /// against the manifest, then magic/version/per-section checksums).
    ///
    /// * `Ok(None)` — the directory holds no snapshots at all (fresh run).
    /// * `Ok(Some((seq, snap)))` — the latest valid snapshot.
    /// * `Err(Corrupt)` — snapshots exist but none verifies.
    pub fn load_latest(&self) -> Result<Option<(u64, Snapshot)>, CheckpointError> {
        let candidates = self.candidates()?;
        if candidates.is_empty() {
            return Ok(None);
        }
        let mut failures = Vec::new();
        for (seq, path, entry) in &candidates {
            let data = match fs::read(path) {
                Ok(d) => d,
                Err(e) => {
                    failures.push(format!("{}: {e}", path.display()));
                    continue;
                }
            };
            if let Some(e) = entry {
                let actual = xxh64(&data, 0);
                if actual != e.xxh64 || data.len() as u64 != e.bytes {
                    failures.push(format!(
                        "{}: file hash/size disagrees with manifest",
                        path.display()
                    ));
                    continue;
                }
            }
            match Snapshot::from_bytes(&data) {
                Ok(snap) => return Ok(Some((*seq, snap))),
                Err(e) => failures.push(format!("{}: {e}", path.display())),
            }
        }
        Err(CheckpointError::Corrupt(format!(
            "no valid snapshot among {} candidate(s): {}",
            candidates.len(),
            failures.join("; ")
        )))
    }

    /// Highest sequence number present on disk (valid or not), so a
    /// resumed run continues numbering instead of overwriting history.
    pub fn max_seq(&self) -> Result<u64, CheckpointError> {
        Ok(self
            .candidates()?
            .first()
            .map(|(seq, _, _)| *seq)
            .unwrap_or(0))
    }
}

fn parse_manifest(doc: &JsonValue) -> Result<Vec<ManifestEntry>, String> {
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("schema_version missing")?;
    if version != MANIFEST_VERSION {
        return Err(format!("unknown schema_version {version}"));
    }
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_arr)
        .ok_or("entries missing")?;
    let mut out = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let seq = e
            .get("seq")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("entries[{i}].seq missing"))?;
        let file = e
            .get("file")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("entries[{i}].file missing"))?;
        if file.contains('/') || file.contains("..") {
            return Err(format!("entries[{i}].file escapes the directory"));
        }
        let bytes = e
            .get("bytes")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("entries[{i}].bytes missing"))?;
        let hash = e
            .get("xxh64")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("entries[{i}].xxh64 missing"))?;
        let xxh64 = u64::from_str_radix(hash, 16)
            .map_err(|_| format!("entries[{i}].xxh64 not a hex hash"))?;
        out.push(ManifestEntry {
            seq,
            file: file.to_string(),
            bytes,
            xxh64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::section;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            static NEXT: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "gplu-ckpt-store-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn snap(tag: u8) -> Snapshot {
        let mut s = Snapshot::new();
        s.add_section(section::META, vec![tag; 16]);
        s
    }

    #[test]
    fn empty_dir_loads_none() {
        let t = TempDir::new();
        let store = CheckpointStore::open(&t.0).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        assert_eq!(store.max_seq().unwrap(), 0);
    }

    #[test]
    fn latest_valid_wins() {
        let t = TempDir::new();
        let store = CheckpointStore::open(&t.0).unwrap();
        store.save(1, &snap(1)).unwrap();
        store.save(2, &snap(2)).unwrap();
        let (seq, s) = store.load_latest().unwrap().expect("snapshot");
        assert_eq!(seq, 2);
        assert_eq!(s.section(section::META), Some(&[2u8; 16][..]));
        assert_eq!(store.max_seq().unwrap(), 2);
        let entries = store.read_manifest().unwrap().expect("manifest");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 1);
        assert_eq!(entries[1].file, "snap-00000002.ckpt");
    }

    #[test]
    fn corrupt_latest_falls_back_to_older_valid() {
        let t = TempDir::new();
        let store = CheckpointStore::open(&t.0).unwrap();
        store.save(1, &snap(1)).unwrap();
        store.save(2, &snap(2)).unwrap();
        // Flip a payload byte in the newest snapshot.
        let p = t.0.join(snap_file_name(2));
        let mut data = fs::read(&p).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&p, &data).unwrap();

        let (seq, s) = store.load_latest().unwrap().expect("older snapshot");
        assert_eq!(seq, 1);
        assert_eq!(s.section(section::META), Some(&[1u8; 16][..]));
    }

    #[test]
    fn all_corrupt_is_a_hard_error() {
        let t = TempDir::new();
        let store = CheckpointStore::open(&t.0).unwrap();
        store.save(1, &snap(1)).unwrap();
        store.save(2, &snap(2)).unwrap();
        for seq in [1, 2] {
            let p = t.0.join(snap_file_name(seq));
            let mut data = fs::read(&p).unwrap();
            data.truncate(data.len() / 2);
            fs::write(&p, &data).unwrap();
        }
        assert!(matches!(
            store.load_latest(),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_manifest_still_finds_snapshots() {
        let t = TempDir::new();
        let store = CheckpointStore::open(&t.0).unwrap();
        store.save(3, &snap(3)).unwrap();
        fs::remove_file(t.0.join(MANIFEST_FILE)).unwrap();
        let (seq, _) = store.load_latest().unwrap().expect("snapshot");
        assert_eq!(seq, 3);
    }

    #[test]
    fn garbage_manifest_falls_back_to_directory_scan() {
        let t = TempDir::new();
        let store = CheckpointStore::open(&t.0).unwrap();
        store.save(1, &snap(1)).unwrap();
        fs::write(t.0.join(MANIFEST_FILE), b"{not json").unwrap();
        let (seq, _) = store.load_latest().unwrap().expect("snapshot");
        assert_eq!(seq, 1);
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let t = TempDir::new();
        let store = CheckpointStore::open(&t.0).unwrap();
        store.save(1, &snap(1)).unwrap();
        // A torn write that never got renamed.
        fs::write(t.0.join("snap-00000009.ckpt.tmp"), b"torn").unwrap();
        let (seq, _) = store.load_latest().unwrap().expect("snapshot");
        assert_eq!(seq, 1);
    }

    #[test]
    fn manifest_rejects_path_escapes() {
        let doc = json::parse(
            r#"{"schema_version": 1, "entries": [{"seq": 1, "file": "../evil.ckpt", "bytes": 1, "xxh64": "00"}]}"#,
        )
        .unwrap();
        assert!(parse_manifest(&doc).is_err());
    }
}
