//! Fingerprint-keyed persistent store for refactorization plans.
//!
//! Where [`crate::store::CheckpointStore`] persists a *sequence* of
//! pipeline snapshots (latest-valid-wins resume), the [`PlanStore`]
//! persists a *set* of plan snapshots keyed by pattern fingerprint — the
//! disk tier of the solver service's factor cache. Each entry is one
//! snapshot file `plan-<fp:016x>.ckpt` written through the same
//! tmp/fsync/rename protocol, indexed by a checksummed
//! `cache-manifest.json` rewritten the same way. A crash mid-write
//! leaves either the previous entry set or the new one, never a torn
//! file that could be served as a factor.
//!
//! Corruption is per-entry, not per-store: a truncated or bit-flipped
//! entry fails its checksum on load and surfaces as
//! [`CheckpointError::Corrupt`] for *that fingerprint only*; the caller
//! treats it as a cache miss (cold fallback) and the rest of the tier
//! stays serviceable.
//!
//! Deterministic chaos testing hooks in through [`DiskFaultHook`]: the
//! store consults the hook before every file read/write and surfaces an
//! injected fault as an ordinary [`CheckpointError::Io`]. The hook trait
//! lives here (not in `gpu-sim`) so this crate stays dependency-free;
//! the service adapts its seeded `FaultInjector` onto it.

use crate::hash::xxh64;
use crate::snapshot::{CheckpointError, Snapshot};
use crate::store::write_atomic;
use gplu_trace::{json, JsonValue};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cache-manifest schema version.
pub const PLAN_MANIFEST_VERSION: u64 = 1;

/// Manifest file name inside a plan-cache directory.
pub const PLAN_MANIFEST_FILE: &str = "cache-manifest.json";

/// Deterministic disk-fault injection: the store asks before every file
/// operation; `true` means "inject a failure here". Implementations must
/// be cheap and thread-safe — the store may be called from worker and
/// flusher threads concurrently.
pub trait DiskFaultHook: Send + Sync {
    /// Should this read fail?
    fn on_disk_read(&self) -> bool;
    /// Should this write fail?
    fn on_disk_write(&self) -> bool;
}

/// One cache-manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// Pattern fingerprint the plan is keyed by.
    pub key: u64,
    /// File name relative to the cache directory.
    pub file: String,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// XXH64 of the whole snapshot file.
    pub xxh64: u64,
}

/// A plan-cache directory: the disk tier of the factor cache.
pub struct PlanStore {
    dir: PathBuf,
    faults: Option<Arc<dyn DiskFaultHook>>,
}

impl std::fmt::Debug for PlanStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStore")
            .field("dir", &self.dir)
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

fn plan_file_name(key: u64) -> String {
    format!("plan-{key:016x}.ckpt")
}

fn key_of_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("plan-")?.strip_suffix(".ckpt")?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok())?
}

fn injected(op: &str) -> CheckpointError {
    CheckpointError::Io(format!("injected disk {op} fault"))
}

impl PlanStore {
    /// Opens (creating if needed) a plan-cache directory.
    pub fn open(dir: &Path) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir)?;
        Ok(PlanStore {
            dir: dir.to_path_buf(),
            faults: None,
        })
    }

    /// Attaches a disk-fault hook consulted before every file operation.
    pub fn with_faults(mut self, hook: Arc<dyn DiskFaultHook>) -> Self {
        self.faults = Some(hook);
        self
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn check_write(&self) -> Result<(), CheckpointError> {
        match &self.faults {
            Some(h) if h.on_disk_write() => Err(injected("write")),
            _ => Ok(()),
        }
    }

    fn check_read(&self) -> Result<(), CheckpointError> {
        match &self.faults {
            Some(h) if h.on_disk_read() => Err(injected("read")),
            _ => Ok(()),
        }
    }

    /// Durably writes `snap` under `key` and rewrites the manifest.
    /// Returns the number of snapshot bytes written.
    pub fn save(&self, key: u64, snap: &Snapshot) -> Result<u64, CheckpointError> {
        self.check_write()?;
        let bytes = snap.to_bytes();
        let path = self.dir.join(plan_file_name(key));
        write_atomic(&self.dir, &path, &bytes)?;
        self.rewrite_manifest()?;
        Ok(bytes.len() as u64)
    }

    /// Removes the entry for `key` (quarantine eviction reaches the disk
    /// tier too). Missing entries are fine — removal is idempotent.
    pub fn remove(&self, key: u64) -> Result<(), CheckpointError> {
        self.check_write()?;
        let path = self.dir.join(plan_file_name(key));
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        }
        self.rewrite_manifest()
    }

    /// Loads and verifies the entry for `key`.
    ///
    /// * `Ok(None)` — no entry for this fingerprint (plain miss).
    /// * `Ok(Some(snap))` — the entry, checksum-verified.
    /// * `Err(Corrupt)` — an entry exists but fails verification; the
    ///   caller falls back to cold and may remove the entry.
    pub fn load(&self, key: u64) -> Result<Option<Snapshot>, CheckpointError> {
        self.check_read()?;
        let path = self.dir.join(plan_file_name(key));
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if let Some(entry) = self.manifest_entry(key)? {
            if data.len() as u64 != entry.bytes || xxh64(&data, 0) != entry.xxh64 {
                return Err(CheckpointError::Corrupt(format!(
                    "{}: file hash/size disagrees with cache manifest",
                    entry.file
                )));
            }
        }
        Snapshot::from_bytes(&data).map(Some)
    }

    /// Every fingerprint present on disk, from the manifest when it
    /// parses, otherwise by directory scan (a corrupt manifest must not
    /// hide intact entries from rewarm).
    pub fn keys(&self) -> Result<Vec<u64>, CheckpointError> {
        self.check_read()?;
        match self.read_manifest() {
            Ok(Some(entries)) => Ok(entries.into_iter().map(|e| e.key).collect()),
            Ok(None) | Err(_) => {
                let mut v = Vec::new();
                if let Ok(rd) = fs::read_dir(&self.dir) {
                    for entry in rd.flatten() {
                        let name = entry.file_name().to_string_lossy().into_owned();
                        if let Some(key) = key_of_file_name(&name) {
                            v.push(key);
                        }
                    }
                }
                v.sort_unstable();
                Ok(v)
            }
        }
    }

    fn manifest_entry(&self, key: u64) -> Result<Option<PlanEntry>, CheckpointError> {
        Ok(self
            .read_manifest()
            .unwrap_or(None)
            .and_then(|entries| entries.into_iter().find(|e| e.key == key)))
    }

    /// Parses the cache manifest. `Ok(None)` when none exists yet.
    pub fn read_manifest(&self) -> Result<Option<Vec<PlanEntry>>, CheckpointError> {
        let path = self.dir.join(PLAN_MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let doc = json::parse(&text)
            .map_err(|e| CheckpointError::Corrupt(format!("{PLAN_MANIFEST_FILE}: {e}")))?;
        parse_plan_manifest(&doc)
            .map(Some)
            .map_err(|e| CheckpointError::Corrupt(format!("{PLAN_MANIFEST_FILE}: {e}")))
    }

    /// Rebuilds the manifest from the plan files actually on disk — the
    /// directory is the source of truth, the manifest its durable index.
    fn rewrite_manifest(&self) -> Result<(), CheckpointError> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(key) = key_of_file_name(&name) else {
                continue;
            };
            let data = fs::read(entry.path())?;
            entries.push(PlanEntry {
                key,
                file: name,
                bytes: data.len() as u64,
                xxh64: xxh64(&data, 0),
            });
        }
        entries.sort_by_key(|e| e.key);
        let mut doc = String::new();
        doc.push_str(&format!(
            "{{\n  \"schema_version\": {PLAN_MANIFEST_VERSION},\n  \"entries\": ["
        ));
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!(
                "\n    {{\"key\": \"{:016x}\", \"file\": \"{}\", \"bytes\": {}, \
                 \"xxh64\": \"{:016x}\"}}",
                e.key, e.file, e.bytes, e.xxh64
            ));
        }
        doc.push_str("\n  ]\n}\n");
        write_atomic(
            &self.dir,
            &self.dir.join(PLAN_MANIFEST_FILE),
            doc.as_bytes(),
        )
    }
}

fn parse_plan_manifest(doc: &JsonValue) -> Result<Vec<PlanEntry>, String> {
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("schema_version missing")?;
    if version != PLAN_MANIFEST_VERSION {
        return Err(format!("unknown schema_version {version}"));
    }
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_arr)
        .ok_or("entries missing")?;
    let mut out = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let key_hex = e
            .get("key")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("entries[{i}].key missing"))?;
        let key = u64::from_str_radix(key_hex, 16)
            .map_err(|_| format!("entries[{i}].key not a hex fingerprint"))?;
        let file = e
            .get("file")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("entries[{i}].file missing"))?;
        if file.contains('/') || file.contains("..") {
            return Err(format!("entries[{i}].file escapes the directory"));
        }
        let bytes = e
            .get("bytes")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("entries[{i}].bytes missing"))?;
        let hash = e
            .get("xxh64")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("entries[{i}].xxh64 missing"))?;
        let xxh64 = u64::from_str_radix(hash, 16)
            .map_err(|_| format!("entries[{i}].xxh64 not a hex hash"))?;
        out.push(PlanEntry {
            key,
            file: file.to_string(),
            bytes,
            xxh64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::section;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "gplu-plan-store-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn snap(tag: u8) -> Snapshot {
        let mut s = Snapshot::new();
        s.add_section(section::PLAN_META, vec![tag; 8]);
        s.add_section(section::PLAN_BODY, vec![tag; 64]);
        s
    }

    #[test]
    fn save_load_remove_round_trip() {
        let t = TempDir::new();
        let store = PlanStore::open(&t.0).unwrap();
        assert!(store.load(0xABCD).unwrap().is_none());
        store.save(0xABCD, &snap(1)).unwrap();
        store.save(0xEF01, &snap(2)).unwrap();
        let s = store.load(0xABCD).unwrap().expect("entry");
        assert_eq!(s.section(section::PLAN_META), Some(&[1u8; 8][..]));
        assert_eq!(store.keys().unwrap(), vec![0xABCD, 0xEF01]);
        store.remove(0xABCD).unwrap();
        assert!(store.load(0xABCD).unwrap().is_none());
        assert_eq!(store.keys().unwrap(), vec![0xEF01]);
        // Idempotent removal.
        store.remove(0xABCD).unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_per_key_error() {
        let t = TempDir::new();
        let store = PlanStore::open(&t.0).unwrap();
        store.save(7, &snap(1)).unwrap();
        store.save(8, &snap(2)).unwrap();
        let p = t.0.join(plan_file_name(7));
        let mut data = fs::read(&p).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&p, &data).unwrap();
        assert!(matches!(store.load(7), Err(CheckpointError::Corrupt(_))));
        // The sibling entry is untouched.
        assert!(store.load(8).unwrap().is_some());
    }

    #[test]
    fn truncated_entry_fails_checksum_at_every_cut() {
        let t = TempDir::new();
        let store = PlanStore::open(&t.0).unwrap();
        store.save(3, &snap(9)).unwrap();
        let p = t.0.join(plan_file_name(3));
        let data = fs::read(&p).unwrap();
        for cut in 0..data.len() {
            fs::write(&p, &data[..cut]).unwrap();
            assert!(
                matches!(store.load(3), Err(CheckpointError::Corrupt(_))),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn missing_manifest_still_finds_entries() {
        let t = TempDir::new();
        let store = PlanStore::open(&t.0).unwrap();
        store.save(42, &snap(4)).unwrap();
        fs::remove_file(t.0.join(PLAN_MANIFEST_FILE)).unwrap();
        assert_eq!(store.keys().unwrap(), vec![42]);
        assert!(store.load(42).unwrap().is_some());
    }

    #[test]
    fn manifest_rejects_path_escapes() {
        let doc = json::parse(
            r#"{"schema_version": 1, "entries": [{"key": "0000000000000001", "file": "../evil.ckpt", "bytes": 1, "xxh64": "00"}]}"#,
        )
        .unwrap();
        assert!(parse_plan_manifest(&doc).is_err());
    }

    struct EveryNth {
        reads: AtomicU64,
        writes: AtomicU64,
        nth: u64,
    }

    impl DiskFaultHook for EveryNth {
        fn on_disk_read(&self) -> bool {
            self.reads.fetch_add(1, Ordering::Relaxed) + 1 == self.nth
        }
        fn on_disk_write(&self) -> bool {
            self.writes.fetch_add(1, Ordering::Relaxed) + 1 == self.nth
        }
    }

    #[test]
    fn fault_hook_surfaces_as_io_error_and_store_recovers() {
        let t = TempDir::new();
        let hook = Arc::new(EveryNth {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            nth: 1,
        });
        let store = PlanStore::open(&t.0).unwrap().with_faults(hook);
        assert!(matches!(
            store.save(1, &snap(1)),
            Err(CheckpointError::Io(_))
        ));
        // The injected fault was transient; the next attempt succeeds and
        // the first failure left nothing torn behind.
        store.save(1, &snap(1)).unwrap();
        assert!(matches!(store.load(1), Err(CheckpointError::Io(_))));
        assert!(store.load(1).unwrap().is_some());
    }
}
