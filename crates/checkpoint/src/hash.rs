//! XXH64 — the 64-bit xxHash used for every snapshot section checksum
//! and for matrix fingerprints.
//!
//! Implemented in-tree (the build has no registry access) following the
//! canonical specification. Properties that matter here: fast single-pass
//! hashing of large byte slices, strong avalanche for corruption
//! detection, and a stable value across platforms and versions — the
//! checksum is part of the on-disk format.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
}

/// XXH64 of `data` with the given seed.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut pos = 0usize;
    let mut hash = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while pos + 32 <= len {
            v1 = round(v1, read_u64(data, pos));
            v2 = round(v2, read_u64(data, pos + 8));
            v3 = round(v3, read_u64(data, pos + 16));
            v4 = round(v4, read_u64(data, pos + 24));
            pos += 32;
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME64_5)
    };
    hash = hash.wrapping_add(len as u64);

    while pos + 8 <= len {
        hash = (hash ^ round(0, read_u64(data, pos)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        pos += 8;
    }
    if pos + 4 <= len {
        hash = (hash ^ u64::from(read_u32(data, pos)).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        pos += 4;
    }
    while pos < len {
        hash = (hash ^ u64::from(data[pos]).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
        pos += 1;
    }

    hash ^= hash >> 33;
    hash = hash.wrapping_mul(PRIME64_2);
    hash ^= hash >> 29;
    hash = hash.wrapping_mul(PRIME64_3);
    hash ^ (hash >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_empty_input() {
        // Canonical XXH64("", seed=0).
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let data = b"the quick brown fox jumps over the lazy dog, twice over";
        assert_eq!(xxh64(data, 7), xxh64(data, 7));
        assert_ne!(xxh64(data, 7), xxh64(data, 8));
    }

    #[test]
    fn single_bit_flips_change_the_hash() {
        // Exercise every length class: <4, <8, <32, >=32 bytes.
        for len in [1usize, 3, 5, 7, 11, 31, 32, 33, 64, 100] {
            let base: Vec<u8> = (0..len as u32).map(|i| (i * 37 + 11) as u8).collect();
            let h0 = xxh64(&base, 0);
            for byte in 0..len {
                for bit in 0..8 {
                    let mut flipped = base.clone();
                    flipped[byte] ^= 1 << bit;
                    assert_ne!(
                        xxh64(&flipped, 0),
                        h0,
                        "len {len}, byte {byte}, bit {bit} collided"
                    );
                }
            }
        }
    }
}
