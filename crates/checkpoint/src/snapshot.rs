//! The versioned, self-describing snapshot container.
//!
//! On-disk layout (all little-endian):
//!
//! ```text
//! magic   8 B   "GPLUCKPT"
//! version 4 B   format version (currently 1)
//! count   4 B   number of sections
//! then per section:
//!   id        4 B   section identifier (see [`section`])
//!   len       8 B   payload length in bytes
//!   checksum  8 B   XXH64(payload, seed = id)
//!   payload   len B
//! ```
//!
//! Every payload carries its own checksum, seeded with the section id so
//! a payload cannot masquerade as a different section. Parsing is fully
//! bounds-checked: truncation, bad magic, an unknown version or any
//! checksum mismatch yields [`CheckpointError::Corrupt`] — never a panic,
//! never silently wrong data.

use crate::hash::xxh64;
use std::fmt;

/// Snapshot file magic.
pub const MAGIC: [u8; 8] = *b"GPLUCKPT";

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Section identifiers of the pipeline checkpoint schema. A snapshot
/// carries the sections appropriate to how far the run had progressed;
/// later-phase snapshots include all earlier-phase sections so any single
/// snapshot is sufficient to resume.
pub mod section {
    /// Run metadata: phase watermark, sequence number, simulated clock.
    pub const META: u32 = 1;
    /// Input-matrix fingerprint (dimensions + structure/value hashes).
    pub const FINGERPRINT: u32 = 2;
    /// Pre-processing output: permuted matrix, permutations, repairs.
    pub const PREPROCESS: u32 = 3;
    /// Partial symbolic progress: OOC chunk index, fill counts, frontier
    /// sizes, backoff state.
    pub const SYMBOLIC_PARTIAL: u32 = 4;
    /// Completed symbolic output: filled CSR pattern + metrics.
    pub const SYMBOLIC: u32 = 5;
    /// Levelization output.
    pub const LEVELS: u32 = 6;
    /// Numeric progress: completed-level watermark + working values.
    pub const NUMERIC: u32 = 7;
    /// Serialized recovery log (corrective actions survive restarts).
    pub const RECOVERY: u32 = 8;
    /// Persisted refactorization-plan metadata: plan schema version,
    /// pattern fingerprint, format tag.
    pub const PLAN_META: u32 = 9;
    /// Persisted refactorization-plan body: permutations, patterns,
    /// schedule, scatter maps, policies.
    pub const PLAN_BODY: u32 = 10;
}

/// Errors from snapshot encoding/decoding and the checkpoint store.
#[derive(Debug)]
pub enum CheckpointError {
    /// The snapshot bytes are corrupt: bad magic, unknown version,
    /// truncation, checksum mismatch or a malformed payload.
    Corrupt(String),
    /// A filesystem operation failed.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// A snapshot: an ordered set of identified, checksummed sections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Adds a section. Replaces any existing section with the same id, so
    /// builders can assemble snapshots incrementally.
    pub fn add_section(&mut self, id: u32, payload: Vec<u8>) {
        if let Some(slot) = self.sections.iter_mut().find(|(i, _)| *i == id) {
            slot.1 = payload;
        } else {
            self.sections.push((id, payload));
        }
    }

    /// Payload of the section with the given id.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, p)| p.as_slice())
    }

    /// Ids of all sections present, in insertion order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|(i, _)| *i).collect()
    }

    /// Serializes the snapshot.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            16 + self
                .sections
                .iter()
                .map(|(_, p)| 20 + p.len())
                .sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&xxh64(payload, u64::from(*id)).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and verifies a snapshot.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CheckpointError> {
        let corrupt = |msg: String| Err(CheckpointError::Corrupt(msg));
        if data.len() < 16 {
            return corrupt(format!("file too short ({} B)", data.len()));
        }
        if data[..8] != MAGIC {
            return corrupt("bad magic (not a gplu checkpoint)".into());
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return corrupt(format!(
                "unsupported format version {version} (expected {FORMAT_VERSION})"
            ));
        }
        let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        let mut sections = Vec::new();
        let mut pos = 16usize;
        for k in 0..count {
            if data.len() - pos < 20 {
                return corrupt(format!("truncated at section {k} header"));
            }
            let id = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
            let len = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().expect("8 bytes"));
            let sum = u64::from_le_bytes(data[pos + 12..pos + 20].try_into().expect("8 bytes"));
            pos += 20;
            if len > (data.len() - pos) as u64 {
                return corrupt(format!("truncated in section {id} payload"));
            }
            let payload = &data[pos..pos + len as usize];
            pos += len as usize;
            let actual = xxh64(payload, u64::from(id));
            if actual != sum {
                return corrupt(format!(
                    "checksum mismatch in section {id}: stored {sum:016x}, computed {actual:016x}"
                ));
            }
            sections.push((id, payload.to_vec()));
        }
        if pos != data.len() {
            return corrupt(format!(
                "{} trailing bytes after last section",
                data.len() - pos
            ));
        }
        Ok(Snapshot { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.add_section(section::META, vec![1, 2, 3]);
        s.add_section(section::FINGERPRINT, vec![]);
        s.add_section(section::NUMERIC, (0u8..200).collect());
        s
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("valid");
        assert_eq!(back, s);
        assert_eq!(back.section(section::META), Some(&[1u8, 2, 3][..]));
        assert_eq!(back.section(section::FINGERPRINT), Some(&[][..]));
        assert_eq!(back.section(99), None);
    }

    #[test]
    fn add_section_replaces_by_id() {
        let mut s = Snapshot::new();
        s.add_section(section::META, vec![1]);
        s.add_section(section::META, vec![2]);
        assert_eq!(s.section_ids(), vec![section::META]);
        assert_eq!(s.section(section::META), Some(&[2u8][..]));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            match Snapshot::from_bytes(&bad) {
                Err(CheckpointError::Corrupt(_)) => {}
                Ok(parsed) => {
                    // A flip inside a length/count field can only be
                    // accepted if it still parses to the same content —
                    // anything else must have been caught.
                    assert_eq!(parsed, sample(), "byte {i}: flip silently changed content");
                }
                Err(other) => panic!("byte {i}: unexpected error kind {other}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes[..cut]),
                    Err(CheckpointError::Corrupt(_))
                ),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(Snapshot::from_bytes(&bytes).is_err());

        let mut bytes = sample().to_bytes();
        bytes[8] = 0xFF; // version
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn payload_cannot_masquerade_as_another_section() {
        // Same payload bytes under two ids hash differently (id-seeded).
        let mut a = Snapshot::new();
        a.add_section(section::META, vec![9; 32]);
        let mut b = Snapshot::new();
        b.add_section(section::LEVELS, vec![9; 32]);
        let ba = a.to_bytes();
        let bb = b.to_bytes();
        // Swap the id field of `a` to LEVELS without fixing the checksum.
        let mut forged = ba.clone();
        forged[16..20].copy_from_slice(&bb[16..20]);
        assert!(Snapshot::from_bytes(&forged).is_err());
    }
}
