//! # gplu-checkpoint
//!
//! Crash-consistent checkpoint/resume for long factorizations.
//!
//! The paper's whole premise is runs whose intermediates exceed device
//! memory — long, chunked, and restartable *in spirit* (Algorithm 3
//! already streams source rows in resumable chunks). This crate makes
//! them restartable *in practice*: a versioned, self-describing binary
//! snapshot format ([`Snapshot`], magic + format version + per-section
//! XXH64 checksums) and a durable store ([`CheckpointStore`]) whose
//! writes are crash-consistent (tmp file + fsync + atomic rename +
//! latest-valid-wins manifest).
//!
//! The crate is deliberately policy-free: it defines the container, the
//! checksum discipline, the atomicity protocol and typed codecs for the
//! sparse structures ([`codec`]); *what* goes into each section and
//! *when* snapshots are cut is decided by the pipeline in `gplu-core`,
//! which owns the phase structure.
//!
//! Corruption of any kind — truncation, bit flips, a forged section id,
//! a manifest pointing at a missing file — is detected and surfaced as
//! [`CheckpointError::Corrupt`]; the loader then falls back to the next
//! older snapshot, and only when *no* candidate verifies does resume
//! fail. A checkpointed run can therefore never be resumed from torn
//! state: it either continues from a verified prefix of its own history
//! or reports corruption explicitly.

pub mod codec;
pub mod hash;
pub mod plan_store;
pub mod snapshot;
pub mod store;

pub use codec::{
    decode_csc, decode_csr, decode_perm, encode_csc, encode_csr, encode_perm, Dec, Enc,
};
pub use hash::xxh64;
pub use plan_store::{
    DiskFaultHook, PlanEntry, PlanStore, PLAN_MANIFEST_FILE, PLAN_MANIFEST_VERSION,
};
pub use snapshot::{section, CheckpointError, Snapshot, FORMAT_VERSION, MAGIC};
pub use store::{CheckpointStore, ManifestEntry, MANIFEST_FILE, MANIFEST_VERSION};
