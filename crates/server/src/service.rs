//! The solver service: bounded admission queue, worker pool, tiered
//! execution against the factor cache.

use crate::cache::{CacheCounters, CacheTier, CachedFactor, FactorCache};
use crate::fleet::{DeviceLoadSnapshot, FleetScheduler};
use crate::job::{ExecTier, JobHandle, JobKind, JobResult, JobSpec, QueuedJob};
use crate::observe::{JobObservation, ServiceObs, DEFAULT_SLO_WINDOW, DRIFT_SAMPLE_EVERY};
use gplu_checkpoint::{DiskFaultHook, PlanStore};
use gplu_core::{matrix_fingerprint, pattern_fingerprint, GpluError, LuFactorization};
use gplu_numeric::TriSolvePlan;
use gplu_sim::{CostModel, DiskOp, FaultInjector, FaultPlan, Gpu, GpuConfig};
use gplu_trace::{Recorder, TraceSink, NOOP};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Service knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; submissions past it are rejected with
    /// [`GpluError::QueueFull`].
    pub queue_cap: usize,
    /// Factor-cache budget in bytes (see [`FactorCache`]).
    pub cache_budget_bytes: u64,
    /// Numeric rejections (failed residual gate, unrepaired singular
    /// pivot, stale pivot order) a pattern may accumulate before the
    /// service quarantines it and fast-rejects further jobs on it with
    /// [`GpluError::Quarantined`]. 0 disables quarantine.
    pub quarantine_strikes: u32,
    /// Live observability (the [`ServiceObs`] layer: metrics registry,
    /// SLO window, drift profiler). On by default; the `service_slo`
    /// bench turns it off to measure the registry's overhead against a
    /// bare service.
    pub observability: bool,
    /// Completed jobs the sliding SLO window holds.
    pub slo_window: usize,
    /// Drift-profiler sampling period: one in this many pipeline calls
    /// runs with the profiler as a live trace sink (which makes that
    /// call emit its full span stream). 1 profiles every call, 0
    /// disables drift profiling. The default keeps the observability
    /// layer under the `service_slo` bench's 2% wall-overhead budget.
    pub drift_sample_every: u64,
    /// Host-memory cache tier budget in bytes: plans evicted from the
    /// device arena demote here instead of dropping. 0 disables the
    /// tier (demoted entries drop, as before the tiering).
    pub host_cache_budget_bytes: u64,
    /// Directory for the persistent disk cache tier. `None` (the
    /// default) runs memory-only. When set, newly built plans are
    /// persisted write-behind and misses consult the store before
    /// falling back cold. An unopenable directory degrades to
    /// memory-only rather than failing startup.
    pub cache_dir: Option<PathBuf>,
    /// Repopulate the host tier from `cache_dir` before the workers
    /// start (crash-consistent warm restart). No-op without `cache_dir`.
    pub rewarm: bool,
    /// Fault plan driven through the disk tier's I/O hooks
    /// (`diskfault:read=N` / `diskfault:write=N` grammar) — the chaos
    /// knob for degraded-mode tests. Independent of per-job GPU faults.
    pub disk_fault_plan: Option<FaultPlan>,
    /// Simulated devices behind the admission queue (clamped to at
    /// least 1). With more than one, every accepted job is placed on a
    /// device by the [`FleetScheduler`]: patterns route back to the
    /// device that built their plan, unknown patterns go least-loaded,
    /// and a dead device's patterns re-home onto survivors.
    pub devices: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_cap: 64,
            cache_budget_bytes: 64 << 20,
            quarantine_strikes: 2,
            observability: true,
            slo_window: DEFAULT_SLO_WINDOW,
            drift_sample_every: DRIFT_SAMPLE_EVERY,
            host_cache_budget_bytes: 64 << 20,
            cache_dir: None,
            rewarm: false,
            disk_fault_plan: None,
            devices: 1,
        }
    }
}

/// Adapts the simulator's [`FaultInjector`] (which owns the
/// `diskfault:` grammar and ordinal accounting) onto the checkpoint
/// crate's [`DiskFaultHook`] so one fault plan drives both layers.
struct InjectorHook(Arc<FaultInjector>);

impl DiskFaultHook for InjectorHook {
    fn on_disk_read(&self) -> bool {
        self.0.on_disk_op(DiskOp::Read)
    }

    fn on_disk_write(&self) -> bool {
        self.0.on_disk_op(DiskOp::Write)
    }
}

/// Wall-clock source producing strictly increasing f64 nanosecond stamps
/// across threads, so the service-level trace stays a valid (sortable)
/// Chrome timeline no matter how workers interleave.
#[derive(Debug)]
struct WallClock {
    origin: Instant,
    last: Mutex<f64>,
}

impl WallClock {
    fn new() -> Self {
        WallClock {
            origin: Instant::now(),
            last: Mutex::new(0.0),
        }
    }

    fn now(&self) -> f64 {
        let t = self.origin.elapsed().as_nanos() as f64;
        let mut last = self.last.lock().unwrap();
        let v = if t > *last { t } else { *last + 1.0 };
        *last = v;
        v
    }
}

/// Monotone service counters (atomics — read with [`SolverService::stats`]).
#[derive(Debug, Default)]
struct ServiceStats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_dropped: AtomicU64,
    cold: AtomicU64,
    warm: AtomicU64,
    warm_host: AtomicU64,
    warm_disk: AtomicU64,
    cached_solve: AtomicU64,
    load_shed: AtomicU64,
    hot_jobs: AtomicU64,
    hot_hits: AtomicU64,
    plans_built: AtomicU64,
    injected_faults: AtomicU64,
    jobs_recovered: AtomicU64,
    gate_failures: AtomicU64,
    quarantine_rejected: AtomicU64,
    max_depth: AtomicU64,
    // Completed-job latencies for the percentile report.
    sim_ns: Mutex<Vec<f64>>,
    wall_ns: Mutex<Vec<f64>>,
}

/// Point-in-time view of the service counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Jobs accepted onto the queue.
    pub submitted: u64,
    /// Submissions refused with queue-full backpressure.
    pub rejected: u64,
    /// Jobs that returned a result.
    pub completed: u64,
    /// Jobs that returned a typed error (after recovery exhausted).
    pub failed: u64,
    /// Jobs cancelled before a worker started them.
    pub cancelled: u64,
    /// Jobs dropped because their deadline passed while queued.
    pub deadline_dropped: u64,
    /// Jobs served cold / warm / from cached factors.
    pub cold: u64,
    /// Pattern hit, value miss: refactorization fast path.
    pub warm: u64,
    /// Pattern hit rescued from the host memory tier (demoted or
    /// rewarmed plans promoted back on use).
    pub warm_host: u64,
    /// Pattern hit rescued from the persistent disk tier.
    pub warm_disk: u64,
    /// Pattern and value hit: factors reused outright.
    pub cached_solve: u64,
    /// Best-effort jobs refused at admission while the service was
    /// degraded and under queue pressure.
    pub load_shed: u64,
    /// Jobs flagged as hot-pattern traffic.
    pub hot_jobs: u64,
    /// Hot jobs served warm or from cached factors.
    pub hot_hits: u64,
    /// RefactorPlan + TriSolvePlan constructions (== cold misses that
    /// built pattern artifacts; the regression bound for "a plan is built
    /// exactly once per cached pattern").
    pub plans_built: u64,
    /// Faults injected across all job GPUs.
    pub injected_faults: u64,
    /// Jobs whose recovery ladder recorded at least one action.
    pub jobs_recovered: u64,
    /// Jobs rejected by numeric acceptance (residual gate, unrepaired
    /// singular pivot, stale pivot order) — each one a strike against
    /// its pattern.
    pub gate_failures: u64,
    /// Jobs fast-rejected because their pattern was quarantined.
    pub quarantine_rejected: u64,
    /// Patterns currently at or past the quarantine strike limit.
    pub quarantined_patterns: u64,
    /// Deepest the queue ever got.
    pub max_depth: u64,
    /// Per-job simulated latencies (ns), completion order.
    pub sim_ns: Vec<f64>,
    /// Per-job wall latencies (ns), completion order.
    pub wall_ns: Vec<f64>,
    /// Per-device placement state, in device order (one entry for a
    /// single-device service).
    pub devices: Vec<DeviceLoadSnapshot>,
}

impl StatsSnapshot {
    /// Cache hit rate over the hot-pattern segment (1.0 when no hot jobs).
    pub fn hot_hit_rate(&self) -> f64 {
        if self.hot_jobs == 0 {
            1.0
        } else {
            self.hot_hits as f64 / self.hot_jobs as f64
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<QueuedJob>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Jobs currently executing in workers (drain-and-flush watches
    /// this reach zero alongside an empty queue).
    in_flight: AtomicU64,
    cap: usize,
    cache: FactorCache,
    stats: ServiceStats,
    clock: WallClock,
    trace: Option<Arc<Recorder>>,
    /// Numeric-rejection strikes per pattern fingerprint; a pattern at or
    /// past `strike_limit` is quarantined.
    strikes: Mutex<HashMap<u64, u32>>,
    strike_limit: u32,
    /// Device-fleet placement: locality-first routing plus per-device
    /// load/hit accounting (trivial for a single-device service).
    fleet: FleetScheduler,
    /// Live metrics/SLO/drift bundle, when observability is on.
    obs: Option<Arc<ServiceObs>>,
}

impl Shared {
    fn sink(&self) -> &dyn TraceSink {
        match &self.trace {
            Some(r) => r.as_ref(),
            None => &NOOP,
        }
    }

    /// The trace sink for the next pipeline call: the drift profiler on
    /// sampled calls ([`ServiceConfig::drift_sample_every`]), the no-op
    /// sink otherwise. The service recorder keeps wall time either way;
    /// sampled calls' `drift.sample` instants feed the cost-model table.
    fn drift_sink(&self) -> &dyn TraceSink {
        match &self.obs {
            Some(o) => o.drift_sink(),
            None => &NOOP,
        }
    }
}

/// The in-process solver service. Dropping it shuts the pool down
/// (pending jobs are dropped as cancelled).
pub struct SolverService {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl SolverService {
    /// Starts the worker pool with no service-level tracing.
    pub fn start(cfg: ServiceConfig) -> Self {
        Self::start_inner(cfg, None)
    }

    /// Starts the worker pool with service-level spans and counters
    /// recorded into `rec` (wall-clock timeline: one `service.job` span
    /// per job, `service.queue_depth` counter samples, `service.reject`
    /// instants).
    pub fn start_traced(cfg: ServiceConfig, rec: Arc<Recorder>) -> Self {
        Self::start_inner(cfg, Some(rec))
    }

    fn start_inner(cfg: ServiceConfig, trace: Option<Arc<Recorder>>) -> Self {
        let store = cfg.cache_dir.as_ref().and_then(|dir| {
            // An unopenable cache dir degrades to memory-only: the
            // service must come up, and the report's `disk.enabled`
            // field makes the degradation visible.
            PlanStore::open(dir)
                .ok()
                .map(|s| match &cfg.disk_fault_plan {
                    Some(plan) => {
                        let inj = Arc::new(FaultInjector::new(plan.clone()));
                        s.with_faults(Arc::new(InjectorHook(inj)))
                    }
                    None => s,
                })
        });
        let cache =
            FactorCache::with_tiers(cfg.cache_budget_bytes, cfg.host_cache_budget_bytes, store);
        if cfg.rewarm {
            // Before any worker exists: every plan the store yields is
            // host-resident by the time the first job can miss, so a
            // previously-hot pattern never recomputes symbolic work.
            cache.rewarm();
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            cap: cfg.queue_cap.max(1),
            cache,
            stats: ServiceStats::default(),
            clock: WallClock::new(),
            trace,
            strikes: Mutex::new(HashMap::new()),
            strike_limit: cfg.quarantine_strikes,
            fleet: FleetScheduler::new(cfg.devices),
            obs: cfg.observability.then(|| {
                Arc::new(ServiceObs::new(
                    cfg.slo_window,
                    cfg.drift_sample_every,
                    cfg.devices.max(1),
                ))
            }),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let sh = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        SolverService {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits a job. Returns [`GpluError::QueueFull`] when the bounded
    /// queue is at capacity — the backpressure signal; the caller decides
    /// whether to retry, shed, or wait on an outstanding handle.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, GpluError> {
        let sh = &self.shared;
        let mut q = sh.queue.lock().unwrap();
        if q.len() >= sh.cap {
            sh.stats.rejected.fetch_add(1, Ordering::Relaxed);
            drop(q);
            if let Some(o) = &sh.obs {
                o.on_reject();
            }
            let sink = sh.sink();
            if sink.enabled() {
                sink.instant("service.reject", "service", sh.clock.now(), &[]);
            }
            return Err(GpluError::QueueFull {
                depth: sh.cap,
                cap: sh.cap,
            });
        }
        // Degradation-aware admission: while the disk tier is down the
        // service has lost its rescue path (every cache miss past the
        // memory tiers is a full cold factorization), and while a fleet
        // device is dead the survivors absorb its share of the load —
        // either way, under queue pressure best-effort traffic is shed
        // to keep protected tenants' latency. The threshold is half the
        // queue: shedding only begins when backpressure is already
        // building.
        if spec.best_effort
            && q.len() * 2 >= sh.cap
            && (sh.cache.disk_down() || sh.fleet.degraded())
        {
            let depth = q.len();
            sh.stats.load_shed.fetch_add(1, Ordering::Relaxed);
            drop(q);
            if let Some(o) = &sh.obs {
                o.on_load_shed();
            }
            let sink = sh.sink();
            if sink.enabled() {
                sink.instant("service.load_shed", "service", sh.clock.now(), &[]);
            }
            return Err(GpluError::LoadShed {
                tenant: spec.tenant,
                depth,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        if spec.hot {
            sh.stats.hot_jobs.fetch_add(1, Ordering::Relaxed);
        }
        // Placement at admission: the device is decided while the
        // pattern's home (if any) is current, and the per-device
        // logical queue depth feeds back into later placements.
        let device = sh.fleet.place(pattern_fingerprint(&spec.matrix));
        q.push_back(QueuedJob {
            id,
            spec,
            tx,
            cancelled: Arc::clone(&cancelled),
            enqueued: Instant::now(),
            device,
        });
        let depth = q.len() as u64;
        sh.stats.submitted.fetch_add(1, Ordering::Relaxed);
        sh.stats.max_depth.fetch_max(depth, Ordering::Relaxed);
        drop(q);
        sh.cv.notify_one();
        if let Some(o) = &sh.obs {
            o.on_queue_depth(depth as usize);
        }
        sh.sink().counter(
            "service.queue_depth",
            "service",
            sh.clock.now(),
            depth as f64,
        );
        Ok(JobHandle { id, rx, cancelled })
    }

    /// Submits with bounded retry on [`GpluError::QueueFull`]:
    /// exponential backoff (200 µs base, doubling, capped) with
    /// deterministic jitter derived from the job's pattern fingerprint
    /// and attempt number — no wall-clock randomness, so replays with
    /// the same workload seed back off identically. Other errors
    /// (including [`GpluError::LoadShed`]) return immediately: shed
    /// means *reduce* load, not hammer the queue.
    pub fn submit_with_backoff(
        &self,
        spec: JobSpec,
        max_retries: u32,
    ) -> Result<JobHandle, GpluError> {
        let seed = pattern_fingerprint(&spec.matrix);
        let mut attempt = 0u32;
        loop {
            match self.submit(spec.clone()) {
                Ok(h) => return Ok(h),
                Err(e @ GpluError::QueueFull { .. }) => {
                    if attempt >= max_retries {
                        return Err(e);
                    }
                    let base_us = 200u64 << attempt.min(6);
                    let jitter_us = splitmix64(seed ^ u64::from(attempt)) % (base_us / 2 + 1);
                    thread::sleep(Duration::from_micros(base_us + jitter_us));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Jobs waiting right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// The factor cache (for inspection and tests).
    pub fn cache(&self) -> &FactorCache {
        &self.shared.cache
    }

    /// The device-fleet scheduler (placement inspection and tests).
    pub fn fleet(&self) -> &FleetScheduler {
        &self.shared.fleet
    }

    /// Marks a fleet device dead: it drops out of placement, its homed
    /// patterns re-home onto survivors, and the fleet reports itself
    /// degraded to the admission path. Returns false for an
    /// out-of-range ordinal or the last live device.
    pub fn mark_device_dead(&self, device: usize) -> bool {
        let killed = self.shared.fleet.mark_dead(device);
        if killed {
            if let Some(o) = &self.shared.obs {
                o.on_fleet_state(&self.shared.fleet.snapshot());
            }
        }
        killed
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            deadline_dropped: s.deadline_dropped.load(Ordering::Relaxed),
            cold: s.cold.load(Ordering::Relaxed),
            warm: s.warm.load(Ordering::Relaxed),
            warm_host: s.warm_host.load(Ordering::Relaxed),
            warm_disk: s.warm_disk.load(Ordering::Relaxed),
            cached_solve: s.cached_solve.load(Ordering::Relaxed),
            load_shed: s.load_shed.load(Ordering::Relaxed),
            hot_jobs: s.hot_jobs.load(Ordering::Relaxed),
            hot_hits: s.hot_hits.load(Ordering::Relaxed),
            plans_built: s.plans_built.load(Ordering::Relaxed),
            injected_faults: s.injected_faults.load(Ordering::Relaxed),
            jobs_recovered: s.jobs_recovered.load(Ordering::Relaxed),
            gate_failures: s.gate_failures.load(Ordering::Relaxed),
            quarantine_rejected: s.quarantine_rejected.load(Ordering::Relaxed),
            quarantined_patterns: if self.shared.strike_limit == 0 {
                0
            } else {
                self.shared
                    .strikes
                    .lock()
                    .unwrap()
                    .values()
                    .filter(|&&s| s >= self.shared.strike_limit)
                    .count() as u64
            },
            max_depth: s.max_depth.load(Ordering::Relaxed),
            sim_ns: s.sim_ns.lock().unwrap().clone(),
            wall_ns: s.wall_ns.lock().unwrap().clone(),
            devices: self.shared.fleet.snapshot(),
        }
    }

    /// Cache counter snapshot.
    pub fn cache_counters(&self) -> CacheCounters {
        self.shared.cache.counters()
    }

    /// Queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.shared.cap
    }

    /// Cache budget in bytes.
    pub fn cache_budget(&self) -> u64 {
        self.shared.cache.capacity()
    }

    /// The live observability bundle, when the service runs with
    /// [`ServiceConfig::observability`] on.
    pub fn observability(&self) -> Option<&Arc<ServiceObs>> {
        self.shared.obs.as_ref()
    }

    /// Blocks until the queue is empty and every worker is idle, then
    /// flushes the cache's write-behind queue to disk. The graceful
    /// half of drain-and-flush shutdown: after `drain()` returns, every
    /// plan built so far is durable (unless the disk tier is down, in
    /// which case flushing is skipped and `false` is returned).
    pub fn drain(&self) -> bool {
        loop {
            // Both checks under the queue lock: workers register
            // in-flight before releasing it, so this can't observe a
            // popped-but-uncounted job.
            let q = self.shared.queue.lock().unwrap();
            let idle = q.is_empty() && self.shared.in_flight.load(Ordering::SeqCst) == 0;
            drop(q);
            if idle {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        self.shared.cache.flush()
    }

    /// Stops accepting progress and joins the workers. Jobs still queued
    /// are dropped; their handles resolve to [`GpluError::Cancelled`].
    /// Pending write-behind persistence is flushed (graceful shutdown);
    /// call [`FactorCache::simulate_crash`] on [`SolverService::cache`]
    /// first to model an unclean exit instead.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Dropping the queued jobs drops their senders; waiting handles
        // observe the hangup as Cancelled.
        self.shared.queue.lock().unwrap().clear();
        // A no-op without a disk tier; skipped (false) when it is down.
        self.shared.cache.flush();
    }
}

/// SplitMix64: the repo's standard seeded mixer, here for backoff
/// jitter (deterministic in the pattern fingerprint and attempt).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Drop for SolverService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        let job = {
            let mut q = sh.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    // Counted under the queue lock so drain() never sees
                    // "empty queue, zero in flight" while a popped job
                    // is still in a worker's hand.
                    sh.in_flight.fetch_add(1, Ordering::SeqCst);
                    break j;
                }
                if sh.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = sh.cv.wait(q).unwrap();
            }
        };
        let depth = sh.queue.lock().unwrap().len() as f64;
        if let Some(o) = &sh.obs {
            o.on_queue_depth(depth as usize);
        }
        sh.sink()
            .counter("service.queue_depth", "service", sh.clock.now(), depth);
        process(sh, job);
        sh.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn process(sh: &Shared, job: QueuedJob) {
    let start = sh.clock.now();
    if job.cancelled.load(Ordering::SeqCst) {
        sh.stats.cancelled.fetch_add(1, Ordering::Relaxed);
        sh.fleet.finish(job.device, job.spec.hot, false);
        if let Some(o) = &sh.obs {
            o.on_cancel();
        }
        let _ = job.tx.send(Err(GpluError::Cancelled));
        return;
    }
    let waited_ns = job.enqueued.elapsed().as_nanos() as u64;
    if let Some(deadline_ns) = job.spec.deadline_ns {
        if waited_ns > deadline_ns {
            sh.stats.deadline_dropped.fetch_add(1, Ordering::Relaxed);
            sh.fleet.finish(job.device, job.spec.hot, false);
            if let Some(o) = &sh.obs {
                o.on_deadline_drop();
            }
            let _ = job.tx.send(Err(GpluError::DeadlineExceeded {
                waited_ns,
                deadline_ns,
            }));
            return;
        }
    }

    if let Some(o) = &sh.obs {
        o.on_worker_busy(1);
    }
    let outcome = execute(sh, &job);
    if let Some(o) = &sh.obs {
        o.on_worker_busy(-1);
    }

    let end = sh.clock.now();
    let sink = sh.sink();
    if sink.enabled() {
        // Span pairs are emitted at completion so concurrent workers
        // never interleave half-open spans; timestamps still cover the
        // real execution window (chrome export sorts by ts). The job's
        // queued interval rides along as an explicit `queue_wait`
        // sub-span (its begin stamp is reconstructed, so it can tie an
        // existing stamp — chrome sorting doesn't mind).
        let tier = match &outcome {
            Ok(r) => r.tier.label(),
            Err(_) => "error",
        };
        let queued_at = (start - waited_ns as f64).max(0.0);
        sink.span_begin(
            "service.queue_wait",
            "service",
            queued_at,
            &[("job", job.id.into())],
        );
        sink.span_end(
            "service.queue_wait",
            "service",
            start,
            &[("job", job.id.into())],
        );
        sink.span_begin(
            "service.job",
            "service",
            start,
            &[
                ("job", job.id.into()),
                ("kind", job.spec.kind.label().into()),
                ("hot", job.spec.hot.into()),
                ("device", (job.device as u64).into()),
            ],
        );
        sink.span_end(
            "service.job",
            "service",
            end,
            &[("job", job.id.into()), ("tier", tier.into())],
        );
        sink.span_begin(
            "service.execute",
            "service",
            start,
            &[("job", job.id.into())],
        );
        sink.span_end(
            "service.execute",
            "service",
            end,
            &[("job", job.id.into()), ("tier", tier.into())],
        );
    }

    match outcome {
        Ok(mut r) => {
            r.wall_ns = job.enqueued.elapsed().as_nanos() as u64;
            r.queue_wait_ns = waited_ns;
            sh.fleet
                .finish(job.device, job.spec.hot, r.tier != ExecTier::Cold);
            match r.tier {
                ExecTier::Cold => sh.stats.cold.fetch_add(1, Ordering::Relaxed),
                ExecTier::Warm => sh.stats.warm.fetch_add(1, Ordering::Relaxed),
                ExecTier::WarmHost => sh.stats.warm_host.fetch_add(1, Ordering::Relaxed),
                ExecTier::WarmDisk => sh.stats.warm_disk.fetch_add(1, Ordering::Relaxed),
                ExecTier::CachedSolve => sh.stats.cached_solve.fetch_add(1, Ordering::Relaxed),
            };
            if job.spec.hot && r.tier != ExecTier::Cold {
                sh.stats.hot_hits.fetch_add(1, Ordering::Relaxed);
            }
            if r.recovery_events > 0 {
                sh.stats.jobs_recovered.fetch_add(1, Ordering::Relaxed);
            }
            sh.stats.completed.fetch_add(1, Ordering::Relaxed);
            sh.stats.sim_ns.lock().unwrap().push(r.sim_ns);
            sh.stats.wall_ns.lock().unwrap().push(r.wall_ns as f64);
            if let Some(o) = &sh.obs {
                o.record_job(&JobObservation {
                    tenant: &job.spec.tenant,
                    tier: r.tier,
                    queue_wait_ns: waited_ns,
                    execute_ns: ((end - start) as u64).saturating_sub(r.solve_wall_ns),
                    solve_ns: r.solve_wall_ns,
                    wall_ns: r.wall_ns,
                    sim_ns: r.sim_ns,
                    hot: job.spec.hot,
                    recovery_events: r.recovery_events,
                });
                let c = sh.cache.counters();
                o.on_cache_state(sh.cache.len(), sh.cache.used_bytes(), c.evictions);
                o.on_tier_state(
                    sh.cache.host_len(),
                    sh.cache.host_used_bytes(),
                    sh.cache.disk_down(),
                );
                o.on_fleet_state(&sh.fleet.snapshot());
            }
            let _ = job.tx.send(Ok(r));
        }
        Err(e) => {
            sh.stats.failed.fetch_add(1, Ordering::Relaxed);
            sh.fleet.finish(job.device, job.spec.hot, false);
            if let Some(o) = &sh.obs {
                o.on_failed();
                o.on_fleet_state(&sh.fleet.snapshot());
            }
            let _ = job.tx.send(Err(e));
        }
    }
}

/// Runs the job on a fresh simulated GPU through the cheapest available
/// tier. All pipeline-level tracing goes to a per-job sink (the service
/// recorder keeps wall-clock time; mixing the two timebases would
/// corrupt the timeline).
fn execute(sh: &Shared, job: &QueuedJob) -> Result<JobResult, GpluError> {
    let spec = &job.spec;
    let a = &spec.matrix;
    let fp = pattern_fingerprint(a);

    // Quarantine fast path: a pattern that keeps failing numeric
    // acceptance is rejected before any GPU work is scheduled for it.
    if sh.strike_limit > 0 {
        let strikes = *sh.strikes.lock().unwrap().get(&fp).unwrap_or(&0);
        if strikes >= sh.strike_limit {
            sh.stats.quarantine_rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &sh.obs {
                o.on_quarantine_reject();
            }
            let sink = sh.sink();
            if sink.enabled() {
                sink.instant(
                    "service.quarantine_reject",
                    "service",
                    sh.clock.now(),
                    &[("strikes", (strikes as u64).into())],
                );
            }
            return Err(GpluError::Quarantined {
                pattern_fp: fp,
                strikes,
            });
        }
    }

    let mut cfg = GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz());
    if let Some(mem) = spec.mem_override {
        cfg = cfg.with_memory(mem);
    }
    let gpu = match &spec.fault {
        Some(plan) => Gpu::with_fault_plan(cfg, CostModel::default(), plan.clone()),
        None => Gpu::new(cfg),
    };

    let value_fp = matrix_fingerprint(a);
    let outcome = execute_tiers(sh, job, &gpu, fp, value_fp);
    // Chaos accounting holds whether or not the job survived its faults:
    // an unrecoverable injection still shows up in the service report.
    sh.stats
        .injected_faults
        .fetch_add(gpu.stats().injected_faults(), Ordering::Relaxed);

    // Numeric rejections are strikes against the pattern: the cached
    // plan (if any) is suspect for this traffic and is evicted, and a
    // pattern at the strike limit is quarantined outright.
    if sh.strike_limit > 0 {
        if let Err(
            GpluError::NumericallySingular { .. }
            | GpluError::SingularPivot { .. }
            | GpluError::StalePivotOrder { .. },
        ) = &outcome
        {
            sh.stats.gate_failures.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &sh.obs {
                o.on_gate_failure();
            }
            sh.cache.remove(fp);
            *sh.strikes.lock().unwrap().entry(fp).or_insert(0) += 1;
        }
    }
    outcome
}

fn execute_tiers(
    sh: &Shared,
    job: &QueuedJob,
    gpu: &Gpu,
    fp: u64,
    value_fp: u64,
) -> Result<JobResult, GpluError> {
    let spec = &job.spec;
    let a = &spec.matrix;
    let (tier, entry, factors) = match sh.cache.lookup_tiered(fp) {
        Some((entry, src)) => match entry.latest_for(value_fp) {
            // A value hit is CachedSolve regardless of which tier the
            // entry was rescued from (a demoted entry keeps its latest
            // factors; disk rescues never have them).
            Some(f) => (ExecTier::CachedSolve, Some(entry), f),
            None => {
                let f = Arc::new(entry.plan.refactorize_traced(gpu, a, sh.drift_sink())?);
                entry.store_latest(value_fp, Arc::clone(&f));
                let tier = match src {
                    CacheTier::Device => ExecTier::Warm,
                    CacheTier::Host => ExecTier::WarmHost,
                    CacheTier::Disk => ExecTier::WarmDisk,
                };
                (tier, Some(entry), f)
            }
        },
        None => {
            let f = Arc::new(LuFactorization::compute_traced(
                gpu,
                a,
                &spec.opts,
                sh.drift_sink(),
            )?);
            // Build the pattern artifacts once and publish them. A plan
            // build can only fail on inconsistent inputs — in that case
            // the job still succeeds, it just stays uncacheable.
            let entry = f.refactor_plan(a, &spec.opts).ok().map(|plan| {
                sh.stats.plans_built.fetch_add(1, Ordering::Relaxed);
                let cached = CachedFactor::new(plan, TriSolvePlan::new(&f.lu));
                cached.store_latest(value_fp, Arc::clone(&f));
                // The plan now lives where this job ran: charge the
                // home device's occupancy gauge so locality routing has
                // something to point at.
                sh.fleet.charge_plan(job.device, cached.approx_bytes());
                sh.cache.insert(fp, cached)
            });
            (ExecTier::Cold, entry, f)
        }
    };

    let mut sim_ns = match tier {
        // Factorization work this job actually ran on its GPU.
        ExecTier::Cold | ExecTier::Warm | ExecTier::WarmHost | ExecTier::WarmDisk => {
            factors.report.total().as_ns()
        }
        ExecTier::CachedSolve => 0.0,
    };
    let mut solve_wall_ns = 0u64;
    let solutions = match &spec.kind {
        JobKind::Solve { rhs } => {
            let plan_storage;
            let plan = match &entry {
                Some(e) => &e.solve,
                None => {
                    plan_storage = TriSolvePlan::new(&factors.lu);
                    &plan_storage
                }
            };
            // The solve sub-span gets its own wall window so per-tenant
            // histograms can split solve time out of execution time.
            let track = sh.sink().enabled() || sh.obs.is_some();
            let t0 = track.then(|| sh.clock.now());
            let (xs, t) = factors.solve_many_on_gpu_traced(gpu, plan, rhs, sh.drift_sink())?;
            sim_ns += t.as_ns();
            if let Some(t0) = t0 {
                let t1 = sh.clock.now();
                solve_wall_ns = (t1 - t0) as u64;
                let sink = sh.sink();
                if sink.enabled() {
                    sink.span_begin("service.solve", "service", t0, &[("job", job.id.into())]);
                    sink.span_end("service.solve", "service", t1, &[("job", job.id.into())]);
                }
            }
            Some(xs)
        }
        _ => None,
    };

    Ok(JobResult {
        id: job.id,
        tier,
        device: job.device,
        injected_faults: gpu.stats().injected_faults(),
        recovery_events: factors.report.recovery.events().len(),
        factorization: factors,
        solutions,
        sim_ns,
        wall_ns: 0,       // filled by the caller with the submit→done window
        queue_wait_ns: 0, // filled by the caller
        solve_wall_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use gplu_sparse::gen::random::random_dominant;

    #[test]
    fn factorize_then_refactorize_then_cached() {
        let svc = SolverService::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let a = random_dominant(80, 4.0, 50);
        let r1 = svc
            .submit(JobSpec::new(a.clone(), JobKind::Factorize))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r1.tier, ExecTier::Cold);
        let mut a2 = a.clone();
        a2.vals.iter_mut().for_each(|v| *v *= 1.25);
        let r2 = svc
            .submit(JobSpec::new(a2.clone(), JobKind::Refactorize))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r2.tier, ExecTier::Warm);
        let r3 = svc
            .submit(JobSpec::new(a2, JobKind::Refactorize))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r3.tier, ExecTier::CachedSolve);
        let stats = svc.stats();
        assert_eq!(stats.plans_built, 1, "one pattern, one plan build");
        assert_eq!((stats.cold, stats.warm, stats.cached_solve), (1, 1, 1));
        svc.shutdown();
    }

    #[test]
    fn solve_jobs_return_solutions() {
        let svc = SolverService::start(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        let a = random_dominant(60, 4.0, 51);
        let x_true = vec![1.0; 60];
        let b = a.spmv(&x_true);
        let r = svc
            .submit(JobSpec::new(
                a.clone(),
                JobKind::Solve {
                    rhs: vec![b.clone(), b.clone()],
                },
            ))
            .unwrap()
            .wait()
            .unwrap();
        let xs = r.solutions.expect("solutions");
        assert_eq!(xs.len(), 2);
        assert!(gplu_sparse::verify::check_solution(&a, &xs[0], &b, 1e-8));
        assert!(r.sim_ns > 0.0);
        svc.shutdown();
    }

    #[test]
    fn queue_full_is_typed_backpressure() {
        // No workers can drain fast enough to matter: capacity 1, and the
        // first job occupies the only worker long enough for the probe.
        let svc = SolverService::start(ServiceConfig {
            workers: 1,
            queue_cap: 1,
            ..Default::default()
        });
        let big = random_dominant(300, 5.0, 52);
        let small = random_dominant(40, 3.0, 53);
        let h1 = svc.submit(JobSpec::new(big, JobKind::Factorize)).unwrap();
        // Fill the single queue slot, then overflow it. The worker may
        // steal the first queued job at any moment, so retry the fill.
        let mut rejected = None;
        let mut pending = Vec::new();
        for _ in 0..200 {
            match svc.submit(JobSpec::new(small.clone(), JobKind::Factorize)) {
                Ok(h) => pending.push(h),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let e = rejected.expect("bounded queue must reject eventually");
        assert!(matches!(e, GpluError::QueueFull { cap: 1, .. }), "got {e}");
        assert!(svc.stats().rejected >= 1);
        h1.wait().unwrap();
        for h in pending {
            let _ = h.wait();
        }
        svc.shutdown();
    }

    #[test]
    fn cancelled_and_deadline_jobs_are_typed() {
        // One worker pinned on a big job; the queued ones get cancelled
        // or time out before it finishes.
        let svc = SolverService::start(ServiceConfig {
            workers: 1,
            queue_cap: 8,
            ..Default::default()
        });
        let big = random_dominant(400, 5.0, 54);
        let small = random_dominant(30, 3.0, 55);
        let h_big = svc.submit(JobSpec::new(big, JobKind::Factorize)).unwrap();
        let h_cancel = svc
            .submit(JobSpec::new(small.clone(), JobKind::Factorize))
            .unwrap();
        h_cancel.cancel();
        let h_late = svc
            .submit(JobSpec::new(small, JobKind::Factorize).with_deadline_ns(1))
            .unwrap();
        assert!(matches!(h_cancel.wait(), Err(GpluError::Cancelled)));
        assert!(matches!(
            h_late.wait(),
            Err(GpluError::DeadlineExceeded { .. })
        ));
        h_big.wait().unwrap();
        let stats = svc.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.deadline_dropped, 1);
        svc.shutdown();
    }

    #[test]
    fn traced_service_emits_a_valid_wall_clock_timeline() {
        let rec = Arc::new(Recorder::new());
        let svc = SolverService::start_traced(
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
            Arc::clone(&rec),
        );
        let a = random_dominant(60, 4.0, 56);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                svc.submit(JobSpec::new(a.clone(), JobKind::Refactorize).hot())
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        svc.shutdown();
        let events = rec.events();
        let jobs = events.iter().filter(|e| e.name == "service.job").count();
        assert_eq!(jobs, 8, "4 jobs × B+E");
        assert!(events.iter().any(|e| e.name == "service.queue_depth"));
        // The chrome export must be renderable (sorted, balanced).
        let chrome = gplu_trace::chrome_trace(&events);
        assert!(chrome.contains("service.job"));
    }

    #[test]
    fn observability_records_tenants_tiers_slo_and_drift() {
        use crate::observe::SloSpec;
        let svc = SolverService::start(ServiceConfig {
            workers: 2,
            // Profile every pipeline call so all six jobs feed the
            // drift table this test asserts on.
            drift_sample_every: 1,
            ..Default::default()
        });
        let a = random_dominant(80, 4.0, 58);
        let b = a.spmv(&vec![1.0; 80]);
        for i in 0..6 {
            let tenant = if i % 2 == 0 { "acme" } else { "globex" };
            let kind = if i == 5 {
                JobKind::Solve {
                    rhs: vec![b.clone()],
                }
            } else {
                JobKind::Refactorize
            };
            svc.submit(JobSpec::new(a.clone(), kind).hot().with_tenant(tenant))
                .unwrap()
                .wait()
                .unwrap();
        }
        let obs = svc.observability().expect("observability on by default");
        let mut tenants = obs.tenants();
        tenants.sort();
        assert_eq!(tenants, ["acme", "globex"]);
        // Latency splits exist per tenant; the solve job put wall time
        // into the solve histogram.
        let solve_total: u64 = tenants
            .iter()
            .map(|t| {
                obs.registry()
                    .find_histogram(&format!("service.solve_ns{{tenant={t}}}"))
                    .expect("solve histogram")
                    .sum()
            })
            .sum();
        assert!(solve_total > 0, "solve wall time must be attributed");
        // Tier histograms: 1 cold + 5 hits of some warm/cached mix.
        let tier_count: u64 = ["cold", "warm", "cached_solve"]
            .iter()
            .filter_map(|t| {
                obs.registry()
                    .find_histogram(&format!("service.wall_ns{{tier={t}}}"))
            })
            .map(|h| h.count())
            .sum();
        assert_eq!(tier_count, 6);
        // The drift profiler saw the pipeline's samples: a cold
        // factorize produces symbolic chunks and numeric levels, the
        // solve produces trisolve samples.
        let table = obs.drift_table();
        let kinds: Vec<&str> = table.rows.iter().map(|r| r.kind.as_str()).collect();
        assert!(
            kinds.contains(&"numeric_level") || kinds.contains(&"gemm_tile"),
            "numeric drift samples missing: {kinds:?}"
        );
        assert!(kinds.contains(&"trisolve"), "trisolve missing: {kinds:?}");
        // A generous SLO passes; an impossible one fails with a typed
        // violation list.
        let ok = obs.slo(&SloSpec::parse("sim_p95_ns=1e15,hit_rate=0.5").unwrap());
        assert!(ok.pass(), "violations: {:?}", ok.violations);
        // p99 reaches the cold job's factorization time; 1 ns can't hold.
        let bad = obs.slo(&SloSpec::parse("sim_p99_ns=1").unwrap());
        assert!(!bad.pass());
        // The captured report carries all four v2 sections.
        let report = crate::ServiceReport::capture(&svc);
        let doc = report.to_json();
        for section in ["metrics", "tenants", "slo", "drift"] {
            assert!(doc.get(section).is_some(), "missing {section}");
        }
        svc.shutdown();
    }

    #[test]
    fn observability_off_means_no_registry() {
        let svc = SolverService::start(ServiceConfig {
            workers: 1,
            observability: false,
            ..Default::default()
        });
        let a = random_dominant(40, 4.0, 59);
        svc.submit(JobSpec::new(a, JobKind::Factorize))
            .unwrap()
            .wait()
            .unwrap();
        assert!(svc.observability().is_none());
        let doc = crate::ServiceReport::capture(&svc).to_json();
        assert!(doc.get("metrics").is_none());
        assert!(doc.get("slo").is_none());
        svc.shutdown();
    }

    #[test]
    fn traced_service_splits_queue_wait_execute_and_solve_spans() {
        let rec = Arc::new(Recorder::new());
        let svc = SolverService::start_traced(
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            Arc::clone(&rec),
        );
        let a = random_dominant(60, 4.0, 60);
        let b = a.spmv(&vec![1.0; 60]);
        svc.submit(JobSpec::new(
            a.clone(),
            JobKind::Solve {
                rhs: vec![b.clone()],
            },
        ))
        .unwrap()
        .wait()
        .unwrap();
        svc.shutdown();
        let events = rec.events();
        for name in [
            "service.queue_wait",
            "service.job",
            "service.execute",
            "service.solve",
        ] {
            let n = events.iter().filter(|e| e.name == name).count();
            assert_eq!(n, 2, "{name} must be one balanced B+E pair, got {n}");
        }
        // Sub-spans nest inside the job window.
        let ts = |name: &str| -> Vec<f64> {
            events
                .iter()
                .filter(|e| e.name == name)
                .map(|e| e.ts_ns)
                .collect()
        };
        let job = ts("service.job");
        let solve = ts("service.solve");
        assert!(job[0] <= solve[0] && solve[1] <= job[1], "solve inside job");
        let qw = ts("service.queue_wait");
        assert!(
            qw[1] <= job[0] + 1.0,
            "queue_wait ends where the job starts"
        );
    }

    #[test]
    fn numeric_rejections_strike_and_quarantine_the_pattern() {
        let svc = SolverService::start(ServiceConfig {
            workers: 1,
            quarantine_strikes: 2,
            ..Default::default()
        });
        // Full 2x2 pattern: good values factorize; all-ones values make
        // the second pivot cancel to exactly zero mid-elimination.
        let build = |d: f64| {
            let mut coo = gplu_sparse::Coo::new(2, 2);
            for i in 0..2 {
                for j in 0..2 {
                    coo.push(i, j, if i == j { d } else { 1.0 });
                }
            }
            gplu_sparse::convert::coo_to_csr(&coo)
        };
        let good = build(2.0);
        let bad = build(1.0);

        svc.submit(JobSpec::new(good.clone(), JobKind::Factorize))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(svc.cache().len(), 1);

        // Strike 1 (warm path): typed singular rejection, and the now
        // suspect cache entry is evicted.
        let e = svc
            .submit(JobSpec::new(bad.clone(), JobKind::Factorize))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(e, GpluError::SingularPivot { .. }), "got {e}");
        assert_eq!(svc.cache().len(), 0, "suspect entry must be evicted");

        // Strike 2 (cold path, nothing cached): singular again.
        let e = svc
            .submit(JobSpec::new(bad.clone(), JobKind::Factorize))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(e, GpluError::SingularPivot { .. }), "got {e}");

        // At the limit the pattern is quarantined — even good values are
        // fast-rejected, because quarantine is pattern-keyed.
        let e = svc
            .submit(JobSpec::new(good, JobKind::Factorize))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(
            matches!(e, GpluError::Quarantined { strikes: 2, .. }),
            "got {e}"
        );

        let stats = svc.stats();
        assert_eq!(stats.gate_failures, 2);
        assert_eq!(stats.quarantine_rejected, 1);
        assert_eq!(stats.quarantined_patterns, 1);
        svc.shutdown();
    }

    #[test]
    fn quarantine_disabled_keeps_retrying() {
        let svc = SolverService::start(ServiceConfig {
            workers: 1,
            quarantine_strikes: 0,
            ..Default::default()
        });
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let bad = gplu_sparse::convert::coo_to_csr(&coo);
        for _ in 0..4 {
            let e = svc
                .submit(JobSpec::new(bad.clone(), JobKind::Factorize))
                .unwrap()
                .wait()
                .unwrap_err();
            assert!(
                matches!(e, GpluError::SingularPivot { .. }),
                "never Quarantined when disabled: {e}"
            );
        }
        assert_eq!(svc.stats().quarantine_rejected, 0);
        svc.shutdown();
    }

    #[test]
    fn fleet_routes_hot_patterns_to_their_home_device() {
        let svc = SolverService::start(ServiceConfig {
            workers: 1,
            devices: 4,
            ..Default::default()
        });
        let a = random_dominant(60, 4.0, 61);
        let r1 = svc
            .submit(JobSpec::new(a.clone(), JobKind::Factorize))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r1.tier, ExecTier::Cold);
        let home = r1.device;
        // Every later job on the pattern lands where its plan lives.
        for _ in 0..3 {
            let r = svc
                .submit(JobSpec::new(a.clone(), JobKind::Refactorize).hot())
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(r.device, home, "locality routing must win");
            assert_ne!(r.tier, ExecTier::Cold);
        }
        let snap = svc.stats().devices;
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[home].jobs, 4);
        assert_eq!(snap[home].hot_hit_rate(), 1.0);
        assert!(snap[home].plan_bytes > 0, "cold build charges the home");
        // Killing the home re-homes the pattern onto a survivor.
        assert!(svc.mark_device_dead(home));
        assert!(svc.fleet().degraded());
        let r = svc
            .submit(JobSpec::new(a, JobKind::Refactorize).hot())
            .unwrap()
            .wait()
            .unwrap();
        assert_ne!(r.device, home, "dead device must not receive work");
        assert_ne!(r.tier, ExecTier::Cold, "cache survives the re-home");
        svc.shutdown();
    }

    #[test]
    fn worker_races_on_one_pattern_build_one_plan() {
        let svc = SolverService::start(ServiceConfig {
            workers: 4,
            ..Default::default()
        });
        let a = random_dominant(100, 4.0, 57);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                svc.submit(JobSpec::new(a.clone(), JobKind::Refactorize))
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        // Several workers may lose the cold-miss race and each build a
        // plan, but the cache keeps exactly one entry for the pattern.
        assert_eq!(svc.cache().len(), 1);
        assert!(svc.cache_counters().insertions >= 1);
        svc.shutdown();
    }
}
