//! Live service observability: the metrics registry, the sliding SLO
//! window, and the cost-model drift profiler, bundled per service.
//!
//! [`ServiceObs`] hangs off the service's shared state when
//! [`crate::ServiceConfig::observability`] is on (the default). It owns:
//!
//! * a [`MetricsRegistry`] of counters, gauges, and log-linear latency
//!   histograms keyed per tenant (`service.wall_ns{tenant=t0}`) and per
//!   cache tier (`service.sim_ns{tier=warm}`), split into queue-wait vs
//!   execution vs solve time,
//! * a [`SloWindow`] — a sliding window over the last N completed jobs
//!   that [`SloSpec`] thresholds are evaluated against. The gated
//!   latencies are the *simulated* ones, which are deterministic in the
//!   workload seed, so CI gates don't flake with machine load; wall
//!   thresholds are available but optional,
//! * a [`DriftProfiler`] threaded through a *sampled* subset of
//!   factorize/refactorize/solve calls as their trace sink, folding the
//!   pipeline's `drift.sample` instants into the predicted-vs-observed
//!   cost-model drift table. Sampling matters: a live sink flips the
//!   pipeline's `trace.enabled()` fast path on, and a factorization
//!   emits per-level span events by the hundred. Profiling one call in
//!   [`DRIFT_SAMPLE_EVERY`] keeps the drift table statistically dense
//!   (each sampled call contributes every level it runs) while the
//!   other calls stay on the no-op sink — that is what holds the
//!   `service_slo` bench under its 2% overhead budget.
//!
//! Everything here is lock-cheap at job granularity: histograms are
//! atomics, the window takes a short mutex per completion, and the
//! drift profiler filters events by a pointer-compare before touching
//! its map.

use crate::fleet::DeviceLoadSnapshot;
use crate::job::ExecTier;
use crate::report::percentile;
use gplu_core::{DriftProfiler, DriftTable, DRIFT_FLAG_THRESHOLD};
use gplu_trace::{Counter, Gauge, Histogram, JsonValue, MetricsRegistry, TraceSink, NOOP};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version tag of the `slo` section in the service report.
pub const SLO_SCHEMA_VERSION: u64 = 1;

/// Default sliding-window size (completed jobs) for SLO evaluation.
pub const DEFAULT_SLO_WINDOW: usize = 256;

/// Default drift-profiler sampling period: one in this many pipeline
/// calls (factorize / refactorize / batched solve) runs with the
/// profiler as its live trace sink; the rest run on the no-op sink.
pub const DRIFT_SAMPLE_EVERY: u64 = 64;

/// Service-level objective thresholds. Unset fields are not gated.
///
/// Parsed from the CLI `--slo` flag: a comma-separated `key=value` list,
/// e.g. `sim_p95_ns=2.5e9,hit_rate=0.8,window=256`. Keys: `window`,
/// `sim_p50_ns`, `sim_p95_ns`, `sim_p99_ns`, `wall_p95_ns`, `hit_rate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Completed jobs the sliding window holds.
    pub window: usize,
    /// Ceiling on p50 simulated latency (ns) over the window.
    pub max_sim_p50_ns: Option<f64>,
    /// Ceiling on p95 simulated latency (ns) over the window.
    pub max_sim_p95_ns: Option<f64>,
    /// Ceiling on p99 simulated latency (ns) over the window.
    pub max_sim_p99_ns: Option<f64>,
    /// Ceiling on p95 wall latency (ns) over the window. Machine-load
    /// dependent — leave unset in CI gates.
    pub max_wall_p95_ns: Option<f64>,
    /// Floor on the hot-traffic cache hit rate over the window.
    pub min_hot_hit_rate: Option<f64>,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            window: DEFAULT_SLO_WINDOW,
            max_sim_p50_ns: None,
            max_sim_p95_ns: None,
            max_sim_p99_ns: None,
            max_wall_p95_ns: None,
            min_hot_hit_rate: None,
        }
    }
}

impl SloSpec {
    /// Parses the CLI `key=value,key=value` form.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("slo: `{part}` is not key=value"))?;
            let num = || {
                value
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("slo: `{key}` value `{value}` is not a number"))
            };
            match key.trim() {
                "window" => {
                    let w = num()?;
                    if !(w.is_finite() && w >= 1.0) {
                        return Err(format!("slo: window `{value}` must be >= 1"));
                    }
                    spec.window = w as usize;
                }
                "sim_p50_ns" => spec.max_sim_p50_ns = Some(num()?),
                "sim_p95_ns" => spec.max_sim_p95_ns = Some(num()?),
                "sim_p99_ns" => spec.max_sim_p99_ns = Some(num()?),
                "wall_p95_ns" => spec.max_wall_p95_ns = Some(num()?),
                "hit_rate" => spec.min_hot_hit_rate = Some(num()?),
                other => return Err(format!("slo: unknown key `{other}`")),
            }
        }
        Ok(spec)
    }

    /// The spec as JSON (unset thresholds are `null`).
    pub fn to_json(&self) -> JsonValue {
        fn opt(v: Option<f64>) -> JsonValue {
            v.map_or(JsonValue::Null, JsonValue::Num)
        }
        JsonValue::obj()
            .set("window", self.window as u64)
            .set("sim_p50_ns", opt(self.max_sim_p50_ns))
            .set("sim_p95_ns", opt(self.max_sim_p95_ns))
            .set("sim_p99_ns", opt(self.max_sim_p99_ns))
            .set("wall_p95_ns", opt(self.max_wall_p95_ns))
            .set("hit_rate", opt(self.min_hot_hit_rate))
    }
}

/// One completed job as the SLO window sees it.
#[derive(Debug, Clone, Copy)]
struct SloSample {
    sim_ns: f64,
    wall_ns: f64,
    hot: bool,
    hit: bool,
}

/// Sliding window of the last N completed jobs.
#[derive(Debug)]
pub struct SloWindow {
    cap: usize,
    samples: Mutex<VecDeque<SloSample>>,
}

impl SloWindow {
    fn new(cap: usize) -> SloWindow {
        let cap = cap.max(1);
        SloWindow {
            cap,
            samples: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    fn push(&self, s: SloSample) {
        let mut w = self.samples.lock().expect("slo window lock");
        if w.len() == self.cap {
            w.pop_front();
        }
        w.push_back(s);
    }

    /// Evaluates `spec` against the window's current contents.
    fn evaluate(&self, spec: &SloSpec) -> SloEval {
        let w = self.samples.lock().expect("slo window lock");
        let sim: Vec<f64> = w.iter().map(|s| s.sim_ns).collect();
        let wall: Vec<f64> = w.iter().map(|s| s.wall_ns).collect();
        let hot_jobs = w.iter().filter(|s| s.hot).count() as u64;
        let hot_hits = w.iter().filter(|s| s.hot && s.hit).count() as u64;
        drop(w);
        // Same convention as `StatsSnapshot::hot_hit_rate`: vacuously
        // perfect when the window saw no hot traffic.
        let hot_hit_rate = if hot_jobs == 0 {
            1.0
        } else {
            hot_hits as f64 / hot_jobs as f64
        };
        let eval = SloEval {
            window: self.cap,
            samples: sim.len(),
            sim_p50_ns: percentile(&sim, 50.0),
            sim_p95_ns: percentile(&sim, 95.0),
            sim_p99_ns: percentile(&sim, 99.0),
            wall_p50_ns: percentile(&wall, 50.0),
            wall_p95_ns: percentile(&wall, 95.0),
            wall_p99_ns: percentile(&wall, 99.0),
            hot_jobs,
            hot_hits,
            hot_hit_rate,
            spec: spec.clone(),
            violations: Vec::new(),
        };
        eval.with_violations()
    }
}

/// The SLO verdict: observed window quantiles, the spec they were gated
/// against, and every violated threshold.
#[derive(Debug, Clone)]
pub struct SloEval {
    /// Window capacity.
    pub window: usize,
    /// Completed jobs actually in the window.
    pub samples: usize,
    /// Observed simulated-latency quantiles (ns) over the window.
    pub sim_p50_ns: f64,
    /// p95 simulated latency (ns).
    pub sim_p95_ns: f64,
    /// p99 simulated latency (ns).
    pub sim_p99_ns: f64,
    /// Observed wall-latency quantiles (ns) over the window.
    pub wall_p50_ns: f64,
    /// p95 wall latency (ns).
    pub wall_p95_ns: f64,
    /// p99 wall latency (ns).
    pub wall_p99_ns: f64,
    /// Hot jobs in the window.
    pub hot_jobs: u64,
    /// Hot jobs served warm or from cached factors.
    pub hot_hits: u64,
    /// Hit rate over the window's hot segment (1.0 when none).
    pub hot_hit_rate: f64,
    /// The spec evaluated.
    pub spec: SloSpec,
    /// Human-readable description of each violated threshold.
    pub violations: Vec<String>,
}

impl SloEval {
    fn with_violations(mut self) -> SloEval {
        let mut v = Vec::new();
        let mut ceil = |name: &str, observed: f64, limit: Option<f64>| {
            if let Some(limit) = limit {
                if observed > limit {
                    v.push(format!("{name}: observed {observed:.0} > limit {limit:.0}"));
                }
            }
        };
        ceil("sim_p50_ns", self.sim_p50_ns, self.spec.max_sim_p50_ns);
        ceil("sim_p95_ns", self.sim_p95_ns, self.spec.max_sim_p95_ns);
        ceil("sim_p99_ns", self.sim_p99_ns, self.spec.max_sim_p99_ns);
        ceil("wall_p95_ns", self.wall_p95_ns, self.spec.max_wall_p95_ns);
        if let Some(floor) = self.spec.min_hot_hit_rate {
            if self.hot_hit_rate < floor {
                v.push(format!(
                    "hit_rate: observed {:.3} < floor {floor:.3}",
                    self.hot_hit_rate
                ));
            }
        }
        self.violations = v;
        self
    }

    /// True when no threshold was violated.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }

    /// The `slo` section of the service report.
    pub fn to_json(&self) -> JsonValue {
        let violations: Vec<JsonValue> = self
            .violations
            .iter()
            .map(|v| JsonValue::Str(v.clone()))
            .collect();
        JsonValue::obj()
            .set("schema_version", SLO_SCHEMA_VERSION)
            .set("window", self.window as u64)
            .set("samples", self.samples as u64)
            .set("sim_p50_ns", self.sim_p50_ns)
            .set("sim_p95_ns", self.sim_p95_ns)
            .set("sim_p99_ns", self.sim_p99_ns)
            .set("wall_p50_ns", self.wall_p50_ns)
            .set("wall_p95_ns", self.wall_p95_ns)
            .set("wall_p99_ns", self.wall_p99_ns)
            .set("hot_jobs", self.hot_jobs)
            .set("hot_hits", self.hot_hits)
            .set("hot_hit_rate", self.hot_hit_rate)
            .set("spec", self.spec.to_json())
            .set("violations", violations)
            .set("pass", self.pass())
    }

    /// A one-line human summary for `serve` output.
    pub fn summary(&self) -> String {
        let verdict = if self.pass() {
            "PASS".to_string()
        } else {
            format!("FAIL ({})", self.violations.join("; "))
        };
        format!(
            "slo[{}/{} jobs]: sim p50 {:.0} p95 {:.0} p99 {:.0} ns | \
             wall p95 {:.0} ns | hot hit rate {:.1}% | {verdict}",
            self.samples,
            self.window,
            self.sim_p50_ns,
            self.sim_p95_ns,
            self.sim_p99_ns,
            self.wall_p95_ns,
            self.hot_hit_rate * 100.0,
        )
    }
}

/// Everything `record_job` needs about one completed job.
#[derive(Debug)]
pub struct JobObservation<'a> {
    /// Tenant the job was submitted under.
    pub tenant: &'a str,
    /// Tier that served it.
    pub tier: ExecTier,
    /// Wall time spent queued before a worker picked it up.
    pub queue_wait_ns: u64,
    /// Wall time in the worker excluding the solve phase.
    pub execute_ns: u64,
    /// Wall time in the batched triangular solve (0 for non-solve jobs).
    pub solve_ns: u64,
    /// Full submit→completion wall latency.
    pub wall_ns: u64,
    /// Simulated GPU time the job consumed.
    pub sim_ns: f64,
    /// Hot-pattern traffic marker.
    pub hot: bool,
    /// Recovery-ladder actions taken for this job.
    pub recovery_events: usize,
}

/// One tenant's latency histogram handles, resolved once on the
/// tenant's first completed job and reused for every one after.
#[derive(Debug)]
struct TenantHandles {
    queue_wait: Arc<Histogram>,
    execute: Arc<Histogram>,
    solve: Arc<Histogram>,
    wall: Arc<Histogram>,
    sim: Arc<Histogram>,
}

fn tier_index(tier: ExecTier) -> usize {
    match tier {
        ExecTier::Cold => 0,
        ExecTier::Warm => 1,
        ExecTier::WarmHost => 2,
        ExecTier::WarmDisk => 3,
        ExecTier::CachedSolve => 4,
    }
}

/// Every tier, in [`tier_index`] order.
const TIERS: [ExecTier; 5] = [
    ExecTier::Cold,
    ExecTier::Warm,
    ExecTier::WarmHost,
    ExecTier::WarmDisk,
    ExecTier::CachedSolve,
];

/// The live observability bundle the service threads through its
/// workers. See the module docs for the three sub-systems.
#[derive(Debug)]
pub struct ServiceObs {
    registry: MetricsRegistry,
    drift: DriftProfiler,
    /// Sampling period for [`ServiceObs::drift_sink`]; 0 disables.
    drift_every: u64,
    /// Pipeline calls seen so far; drives the sampling decision.
    drift_calls: AtomicU64,
    /// Cached per-tenant histogram handles, so the per-job record path
    /// is one hash lookup instead of five name `format!`s + registry
    /// locks (the registry's "no allocation on the record path" rule,
    /// upheld from the caller's side).
    tenant_handles: Mutex<HashMap<String, Arc<TenantHandles>>>,
    /// Per-tier wall/sim handles, indexed by [`tier_index`].
    tier_wall: [Arc<Histogram>; 5],
    tier_sim: [Arc<Histogram>; 5],
    window: SloWindow,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    cache_used_bytes: Arc<Gauge>,
    cache_evictions: Arc<Gauge>,
    host_entries: Arc<Gauge>,
    host_used_bytes: Arc<Gauge>,
    /// 1 while the persistent cache tier is in the `down` degraded mode.
    disk_tier_down: Arc<Gauge>,
    /// Per-device fleet gauges, indexed by device ordinal: logical
    /// queue depth, homed plan bytes (the service-level arena-occupancy
    /// stand-in), and the dead flag.
    device_queue: Vec<Arc<Gauge>>,
    device_plan_bytes: Vec<Arc<Gauge>>,
    device_dead: Vec<Arc<Gauge>>,
    load_shed: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    rejected: Arc<Counter>,
    cancelled: Arc<Counter>,
    deadline_dropped: Arc<Counter>,
    recovered_jobs: Arc<Counter>,
    recovery_events: Arc<Counter>,
    gate_failures: Arc<Counter>,
    quarantine_rejects: Arc<Counter>,
}

impl ServiceObs {
    /// A fresh bundle with a window of `slo_window` completed jobs,
    /// drift profiling on one in `drift_sample_every` pipeline calls
    /// (0 turns the profiler off entirely; 1 profiles every call), and
    /// fleet gauges for `devices` devices.
    pub fn new(slo_window: usize, drift_sample_every: u64, devices: usize) -> ServiceObs {
        let registry = MetricsRegistry::new();
        let tier_hist = |metric: &str| {
            TIERS.map(|t| registry.histogram(&format!("service.{metric}{{tier={}}}", t.label())))
        };
        let device_gauge = |metric: &str| {
            (0..devices.max(1))
                .map(|d| registry.gauge(&format!("service.{metric}{{device={d}}}")))
                .collect()
        };
        ServiceObs {
            device_queue: device_gauge("device_queue_depth"),
            device_plan_bytes: device_gauge("device_plan_bytes"),
            device_dead: device_gauge("device_dead"),
            queue_depth: registry.gauge("service.queue_depth"),
            in_flight: registry.gauge("service.in_flight"),
            cache_entries: registry.gauge("service.cache_entries"),
            cache_used_bytes: registry.gauge("service.cache_used_bytes"),
            cache_evictions: registry.gauge("service.cache_evictions"),
            host_entries: registry.gauge("service.cache_host_entries"),
            host_used_bytes: registry.gauge("service.cache_host_used_bytes"),
            disk_tier_down: registry.gauge("service.disk_tier_down"),
            load_shed: registry.counter("service.load_shed"),
            completed: registry.counter("service.completed"),
            failed: registry.counter("service.failed"),
            rejected: registry.counter("service.rejected"),
            cancelled: registry.counter("service.cancelled"),
            deadline_dropped: registry.counter("service.deadline_dropped"),
            recovered_jobs: registry.counter("service.recovered_jobs"),
            recovery_events: registry.counter("service.recovery_events"),
            gate_failures: registry.counter("service.gate_failures"),
            quarantine_rejects: registry.counter("service.quarantine_rejects"),
            tier_wall: tier_hist("wall_ns"),
            tier_sim: tier_hist("sim_ns"),
            registry,
            drift: DriftProfiler::new(),
            drift_every: drift_sample_every,
            drift_calls: AtomicU64::new(0),
            tenant_handles: Mutex::new(HashMap::new()),
            window: SloWindow::new(slo_window),
        }
    }

    /// The underlying registry (exposition, report embedding, tests).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The drift profiler (table reduction, tests).
    pub fn drift(&self) -> &DriftProfiler {
        &self.drift
    }

    /// The trace sink for the next pipeline call: the drift profiler on
    /// one call in `drift_sample_every`, the no-op sink otherwise. A
    /// live sink makes the pipeline emit (and pay for) every span event
    /// it is instrumented with, so this is the service's observability
    /// overhead knob.
    pub fn drift_sink(&self) -> &dyn TraceSink {
        if self.drift_every == 0 {
            return &NOOP;
        }
        let call = self.drift_calls.fetch_add(1, Ordering::Relaxed);
        if call.is_multiple_of(self.drift_every) {
            &self.drift
        } else {
            &NOOP
        }
    }

    /// The current drift table at the standard flag threshold.
    pub fn drift_table(&self) -> DriftTable {
        self.drift.table(DRIFT_FLAG_THRESHOLD)
    }

    /// Evaluates `spec` against the live sliding window.
    pub fn slo(&self, spec: &SloSpec) -> SloEval {
        self.window.evaluate(spec)
    }

    /// Samples the queue depth gauge.
    pub fn on_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as i64);
    }

    /// Workers entering (+1) / leaving (-1) job execution.
    pub fn on_worker_busy(&self, delta: i64) {
        self.in_flight.add(delta);
    }

    /// A submission bounced off the full queue.
    pub fn on_reject(&self) {
        self.rejected.inc();
    }

    /// A queued job observed its cancellation flag.
    pub fn on_cancel(&self) {
        self.cancelled.inc();
    }

    /// A queued job aged past its deadline.
    pub fn on_deadline_drop(&self) {
        self.deadline_dropped.inc();
    }

    /// A job returned a typed error.
    pub fn on_failed(&self) {
        self.failed.inc();
    }

    /// A numeric rejection struck the job's pattern.
    pub fn on_gate_failure(&self) {
        self.gate_failures.inc();
    }

    /// A job was fast-rejected off a quarantined pattern.
    pub fn on_quarantine_reject(&self) {
        self.quarantine_rejects.inc();
    }

    /// Refreshes the cache gauges from a counters snapshot.
    pub fn on_cache_state(&self, entries: usize, used_bytes: u64, evictions: u64) {
        self.cache_entries.set(entries as i64);
        self.cache_used_bytes.set(used_bytes as i64);
        self.cache_evictions.set(evictions as i64);
    }

    /// Refreshes the tiered-cache gauges: host-tier residency and the
    /// disk tier's degraded-mode flag.
    pub fn on_tier_state(&self, host_entries: usize, host_used_bytes: u64, disk_down: bool) {
        self.host_entries.set(host_entries as i64);
        self.host_used_bytes.set(host_used_bytes as i64);
        self.disk_tier_down.set(i64::from(disk_down));
    }

    /// A best-effort job was shed at admission under degraded mode.
    pub fn on_load_shed(&self) {
        self.load_shed.inc();
    }

    /// Refreshes the per-device fleet gauges from a scheduler snapshot.
    pub fn on_fleet_state(&self, snap: &[DeviceLoadSnapshot]) {
        for s in snap {
            if let Some(g) = self.device_queue.get(s.device) {
                g.set(s.queued as i64);
            }
            if let Some(g) = self.device_plan_bytes.get(s.device) {
                g.set(s.plan_bytes as i64);
            }
            if let Some(g) = self.device_dead.get(s.device) {
                g.set(i64::from(s.dead));
            }
        }
    }

    /// Folds one completed job into the histograms and the SLO window.
    pub fn record_job(&self, o: &JobObservation<'_>) {
        self.completed.inc();
        if o.recovery_events > 0 {
            self.recovered_jobs.inc();
            self.recovery_events.add(o.recovery_events as u64);
        }
        let handles = {
            let mut map = self.tenant_handles.lock().expect("tenant handles lock");
            match map.get(o.tenant) {
                Some(h) => Arc::clone(h),
                None => {
                    let tenant = o.tenant;
                    let hist = |metric: &str| {
                        self.registry
                            .histogram(&format!("service.{metric}{{tenant={tenant}}}"))
                    };
                    let h = Arc::new(TenantHandles {
                        queue_wait: hist("queue_wait_ns"),
                        execute: hist("execute_ns"),
                        solve: hist("solve_ns"),
                        wall: hist("wall_ns"),
                        sim: hist("sim_ns"),
                    });
                    map.insert(tenant.to_string(), Arc::clone(&h));
                    h
                }
            }
        };
        handles.queue_wait.record(o.queue_wait_ns);
        handles.execute.record(o.execute_ns);
        handles.solve.record(o.solve_ns);
        handles.wall.record(o.wall_ns);
        handles.sim.record_f64(o.sim_ns);
        let ti = tier_index(o.tier);
        self.tier_wall[ti].record(o.wall_ns);
        self.tier_sim[ti].record_f64(o.sim_ns);
        self.window.push(SloSample {
            sim_ns: o.sim_ns,
            wall_ns: o.wall_ns as f64,
            hot: o.hot,
            hit: o.hot && o.tier != ExecTier::Cold,
        });
    }

    /// Tenants that have recorded at least one completed job.
    pub fn tenants(&self) -> Vec<String> {
        const PREFIX: &str = "service.wall_ns{tenant=";
        self.registry
            .histogram_names()
            .into_iter()
            .filter_map(|n| {
                n.strip_prefix(PREFIX)
                    .and_then(|rest| rest.strip_suffix('}'))
                    .map(str::to_string)
            })
            .collect()
    }

    /// The per-tenant latency breakdown (`tenants` report section):
    /// one object per tenant with job count and p50/p95/p99 over each
    /// latency split.
    pub fn tenants_json(&self) -> JsonValue {
        let mut out = JsonValue::obj();
        for tenant in self.tenants() {
            let mut t = JsonValue::obj();
            let mut count = 0;
            for metric in [
                "queue_wait_ns",
                "execute_ns",
                "solve_ns",
                "wall_ns",
                "sim_ns",
            ] {
                let name = format!("service.{metric}{{tenant={tenant}}}");
                let Some(h) = self.registry.find_histogram(&name) else {
                    continue;
                };
                count = count.max(h.count());
                let base = metric.strip_suffix("_ns").unwrap_or(metric);
                for (q, label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                    t = t.set(&format!("{base}_{label}_ns"), h.quantile(q).unwrap_or(0));
                }
            }
            t = t.set("jobs", count);
            out = out.set(&tenant, t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_spec_parses_the_cli_form() {
        let s = SloSpec::parse("sim_p95_ns=2.5e9, hit_rate=0.8,window=64").unwrap();
        assert_eq!(s.window, 64);
        assert_eq!(s.max_sim_p95_ns, Some(2.5e9));
        assert_eq!(s.min_hot_hit_rate, Some(0.8));
        assert_eq!(s.max_sim_p50_ns, None);
        assert!(SloSpec::parse("bogus=1").is_err());
        assert!(SloSpec::parse("sim_p95_ns").is_err());
        assert!(SloSpec::parse("window=0").is_err());
        assert_eq!(SloSpec::parse("").unwrap(), SloSpec::default());
    }

    #[test]
    fn slo_window_slides_and_gates() {
        let obs = ServiceObs::new(4, 1, 1);
        // 6 jobs; the window keeps the last 4 (sim 300..=600).
        for i in 1..=6u64 {
            obs.record_job(&JobObservation {
                tenant: "t0",
                tier: if i % 2 == 0 {
                    ExecTier::Warm
                } else {
                    ExecTier::Cold
                },
                queue_wait_ns: 10,
                execute_ns: 80,
                solve_ns: 0,
                wall_ns: 100 * i,
                sim_ns: 100.0 * i as f64,
                hot: true,
                recovery_events: 0,
            });
        }
        let pass = obs.slo(&SloSpec::parse("sim_p99_ns=1e9,hit_rate=0.4").unwrap());
        assert_eq!(pass.samples, 4);
        assert!(pass.pass(), "violations: {:?}", pass.violations);
        assert!(pass.sim_p50_ns >= 300.0, "window slid past early samples");
        let fail = obs.slo(&SloSpec::parse("sim_p95_ns=100,hit_rate=0.9").unwrap());
        assert_eq!(fail.violations.len(), 2, "{:?}", fail.violations);
        assert!(!fail.pass());
        let json = fail.to_json();
        assert_eq!(json.get("pass"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            json.get("violations")
                .and_then(JsonValue::as_arr)
                .map(<[JsonValue]>::len),
            Some(2)
        );
    }

    #[test]
    fn record_job_keys_histograms_by_tenant_and_tier() {
        let obs = ServiceObs::new(16, 1, 2);
        for (tenant, wall) in [("t0", 100u64), ("t0", 200), ("t1", 400)] {
            obs.record_job(&JobObservation {
                tenant,
                tier: ExecTier::Cold,
                queue_wait_ns: 5,
                execute_ns: wall - 5,
                solve_ns: 0,
                wall_ns: wall,
                sim_ns: wall as f64,
                hot: false,
                recovery_events: 1,
            });
        }
        let mut tenants = obs.tenants();
        tenants.sort();
        assert_eq!(tenants, ["t0", "t1"]);
        let h = obs
            .registry()
            .find_histogram("service.wall_ns{tenant=t0}")
            .expect("tenant histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(
            obs.registry()
                .find_histogram("service.wall_ns{tier=cold}")
                .expect("tier histogram")
                .count(),
            3
        );
        let tj = obs.tenants_json();
        let t1 = tj.get("t1").expect("t1 section");
        assert_eq!(t1.get("jobs").and_then(JsonValue::as_u64), Some(1));
        let p95 = t1
            .get("wall_p95_ns")
            .and_then(JsonValue::as_u64)
            .expect("p95");
        assert!((400..=425).contains(&p95), "upper-bound estimate: {p95}");
        assert_eq!(obs.registry().counter("service.completed").get(), 3);
        assert_eq!(obs.registry().counter("service.recovery_events").get(), 3);
    }
}
