//! # gplu-server
//!
//! A multi-tenant, in-process solver service over the `gplu` pipeline —
//! the ROADMAP's "serving heavy traffic" north star made concrete on the
//! simulated GPU.
//!
//! Clients submit factorize / refactorize / solve jobs onto a **bounded
//! queue** ([`SolverService::submit`] returns the typed backpressure
//! error [`gplu_core::GpluError::QueueFull`] when it is full); a worker
//! pool drains the queue, one simulated GPU per job. The service's
//! leverage is the **pattern-keyed factor cache** ([`FactorCache`]): the
//! circuit-simulation traffic the paper targets factorizes the same
//! sparsity pattern thousands of times with drifting values, so the
//! pattern-only artifacts — permutations, filled pattern, level schedule,
//! pivot cache, triangular-solve plan — are computed once per pattern
//! (on the cold miss) and every later job runs only the
//! [`gplu_core::RefactorPlan`] fast path, or, when even the values match
//! a previous job, no factorization at all.
//!
//! Five execution tiers, cheapest first:
//!
//! | tier | pattern | values | work |
//! |---|---|---|---|
//! | [`ExecTier::CachedSolve`] | hit | hit | reuse factors, solve only |
//! | [`ExecTier::Warm`] | device hit | miss | value scatter + numeric kernels |
//! | [`ExecTier::WarmHost`] | host hit | miss | promote + numeric kernels |
//! | [`ExecTier::WarmDisk`] | disk hit | miss | decode + validate + numeric |
//! | [`ExecTier::Cold`] | miss | — | full pipeline + plan build |
//!
//! The cache is **tiered**: the hot set is budgeted against a
//! [`gplu_sim::DeviceMemory`] arena and evicts least-recently-used
//! patterns into a separately budgeted host-memory tier; newly built
//! plans are also persisted write-behind into a crash-consistent
//! on-disk [`gplu_checkpoint::PlanStore`], so a restarted service
//! rewarms instead of recomputing symbolic work
//! ([`ServiceConfig::rewarm`]). Entries are `Arc`-shared, so an
//! eviction can never corrupt a job that already holds the entry, and a
//! persisted entry that fails its checksum/schema/fingerprint guards is
//! rejected with an audit trail — corruption costs time, never
//! correctness.
//!
//! With [`ServiceConfig::devices`] > 1 the service schedules jobs
//! across a small simulated **device fleet** ([`FleetScheduler`]):
//! placement is cache-locality-first (a pattern routes back to the
//! device that built its plan) with a least-loaded fallback, per-device
//! hit rates feed the service report's `fleet` section, and a dead
//! device re-homes its patterns onto survivors while degradation-aware
//! admission sheds best-effort traffic under queue pressure.
//!
//! Everything composes with the existing subsystems rather than
//! bypassing them: per-job fault plans run the PR-2 recovery ladder
//! inside the worker, service-level spans/counters flow through
//! `gplu-trace`, and [`ServiceReport`] emits the `RunReport`-style JSON
//! that `telemetry_check --service` validates.

pub mod cache;
pub mod fleet;
pub mod job;
pub mod observe;
pub mod report;
pub mod service;
pub mod workload;

pub use cache::{CacheCounters, CacheTier, CachedFactor, FactorCache, DISK_FAILURE_LIMIT};
pub use fleet::{DeviceLoadSnapshot, FleetScheduler};
pub use job::{ExecTier, JobHandle, JobKind, JobResult, JobSpec};
pub use observe::{
    JobObservation, ServiceObs, SloEval, SloSpec, DEFAULT_SLO_WINDOW, SLO_SCHEMA_VERSION,
};
pub use report::{percentile, ServiceReport, SERVICE_SCHEMA_VERSION};
pub use service::{ServiceConfig, SolverService, StatsSnapshot};
pub use workload::{generate_workload, WorkloadParams};
