//! The pattern-keyed factor cache.
//!
//! Key: the structure-only XXH64 fingerprint from
//! [`gplu_core::pattern_fingerprint`]. Value: every pattern-only artifact
//! a repeat factorization reuses — the [`RefactorPlan`] (permutations,
//! filled pattern, level schedule, pivot cache, value-scatter maps) and
//! the batched [`TriSolvePlan`] — plus the most recent factors keyed by
//! the *content* fingerprint, so a byte-identical resubmission skips the
//! numeric kernels entirely.
//!
//! Memory accounting rides the simulator's own arena: the cache owns a
//! [`DeviceMemory`] of the configured budget and backs every entry with a
//! real allocation in it. Insertion evicts least-recently-used entries
//! until the allocation fits; an entry larger than the whole budget is
//! simply not cached. Entries are handed out as `Arc`s, so eviction frees
//! the *budget* immediately but the artifacts live until the last
//! in-flight job drops its reference — eviction can never corrupt a
//! running refactorization (asserted in `tests/service.rs`).

use gplu_core::{LuFactorization, RefactorPlan};
use gplu_numeric::TriSolvePlan;
use gplu_sim::{DeviceAlloc, DeviceMemory};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached pattern: the reusable plans plus the latest factors.
#[derive(Debug)]
pub struct CachedFactor {
    /// The refactorization fast path for this pattern.
    pub plan: RefactorPlan,
    /// Batched triangular-solve schedule for this pattern's factors.
    pub solve: TriSolvePlan,
    /// Most recent factors, keyed by the value fingerprint that produced
    /// them ([`gplu_core::matrix_fingerprint`]).
    latest: Mutex<Option<(u64, Arc<LuFactorization>)>>,
}

impl CachedFactor {
    /// A fresh entry with no factors yet.
    pub fn new(plan: RefactorPlan, solve: TriSolvePlan) -> Self {
        CachedFactor {
            plan,
            solve,
            latest: Mutex::new(None),
        }
    }

    /// The factors for exactly these values, if they are the ones most
    /// recently produced for this pattern.
    pub fn latest_for(&self, value_fp: u64) -> Option<Arc<LuFactorization>> {
        let guard = self.latest.lock().unwrap();
        guard
            .as_ref()
            .filter(|(fp, _)| *fp == value_fp)
            .map(|(_, f)| Arc::clone(f))
    }

    /// Publishes the factors produced for `value_fp`.
    pub fn store_latest(&self, value_fp: u64, f: Arc<LuFactorization>) {
        *self.latest.lock().unwrap() = Some((value_fp, f));
    }

    /// Bytes this entry charges against the cache budget.
    pub fn approx_bytes(&self) -> u64 {
        self.plan.approx_bytes() + self.solve.approx_bytes()
    }
}

#[derive(Debug)]
struct Slot {
    entry: Arc<CachedFactor>,
    alloc: DeviceAlloc,
    stamp: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<u64, Slot>,
    tick: u64,
}

/// Monotone counters the service report exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Pattern lookups that found an entry.
    pub hits: u64,
    /// Pattern lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (== plans built *and cached*).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries too large for the whole budget, served uncached.
    pub oversize_skipped: u64,
}

/// LRU pattern cache budgeted against a simulated device-memory arena.
#[derive(Debug)]
pub struct FactorCache {
    inner: Mutex<Inner>,
    mem: DeviceMemory,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    oversize_skipped: AtomicU64,
}

impl FactorCache {
    /// A cache with `budget_bytes` of accounting capacity.
    pub fn new(budget_bytes: u64) -> Self {
        FactorCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            mem: DeviceMemory::new(budget_bytes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            oversize_skipped: AtomicU64::new(0),
        }
    }

    /// Looks up a pattern and bumps its recency.
    pub fn lookup(&self, pattern_fp: u64) -> Option<Arc<CachedFactor>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&pattern_fp) {
            Some(slot) => {
                slot.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an entry, evicting LRU patterns until its allocation fits.
    ///
    /// Returns the shared handle either way; when the entry exceeds the
    /// entire budget it is returned uncached (the job still completes —
    /// the cache only ever trades memory for speed, never correctness).
    /// If another worker raced the same pattern in, the existing entry
    /// wins and the new one is dropped.
    pub fn insert(&self, pattern_fp: u64, entry: CachedFactor) -> Arc<CachedFactor> {
        let bytes = entry.approx_bytes().max(1);
        let entry = Arc::new(entry);
        let mut inner = self.inner.lock().unwrap();
        if let Some(slot) = inner.map.get(&pattern_fp) {
            // Lost a cold-miss race: both workers built plans, first
            // insertion wins so every later job shares one entry.
            return Arc::clone(&slot.entry);
        }
        loop {
            match self.mem.alloc(bytes) {
                Ok(alloc) => {
                    inner.tick += 1;
                    let stamp = inner.tick;
                    inner.map.insert(
                        pattern_fp,
                        Slot {
                            entry: Arc::clone(&entry),
                            alloc,
                            stamp,
                        },
                    );
                    self.insertions.fetch_add(1, Ordering::Relaxed);
                    return entry;
                }
                Err(_) => {
                    let lru = inner
                        .map
                        .iter()
                        .min_by_key(|(_, s)| s.stamp)
                        .map(|(fp, _)| *fp);
                    match lru {
                        Some(fp) => {
                            // The Arc keeps the evicted artifacts alive for
                            // any job already holding them; only the budget
                            // is released here.
                            let slot = inner.map.remove(&fp).expect("lru key present");
                            self.mem.free(slot.alloc).expect("cache alloc valid");
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            self.oversize_skipped.fetch_add(1, Ordering::Relaxed);
                            return entry;
                        }
                    }
                }
            }
        }
    }

    /// Drops a pattern's entry and releases its budget (used when the
    /// residual gate rejects factors produced from a cached plan — the
    /// artifacts are suspect for the pattern's current traffic). In-flight
    /// holders keep their `Arc`s; only the cache forgets. Returns whether
    /// an entry was present.
    pub fn remove(&self, pattern_fp: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.remove(&pattern_fp) {
            Some(slot) => {
                self.mem.free(slot.alloc).expect("cache alloc valid");
                self.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Cached patterns right now.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Budget bytes currently charged.
    pub fn used_bytes(&self) -> u64 {
        self.mem.used_bytes()
    }

    /// Configured budget.
    pub fn capacity(&self) -> u64 {
        self.mem.capacity()
    }

    /// Monotone counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            oversize_skipped: self.oversize_skipped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_core::{LuFactorization, LuOptions};
    use gplu_sim::{Gpu, GpuConfig};
    use gplu_sparse::gen::random::random_dominant;
    use gplu_sparse::Csr;

    fn entry_for(a: &Csr) -> CachedFactor {
        let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        let f = LuFactorization::compute(&gpu, a, &LuOptions::default()).expect("ok");
        let plan = f.refactor_plan(a, &LuOptions::default()).expect("plan");
        let solve = TriSolvePlan::new(&f.lu);
        CachedFactor::new(plan, solve)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let a = random_dominant(60, 3.0, 1);
        let fp = gplu_core::pattern_fingerprint(&a);
        let cache = FactorCache::new(64 << 20);
        assert!(cache.lookup(fp).is_none());
        cache.insert(fp, entry_for(&a));
        assert!(cache.lookup(fp).is_some());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
        assert!(cache.used_bytes() > 0);
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let mats: Vec<Csr> = (0..4).map(|s| random_dominant(60, 3.0, 10 + s)).collect();
        let one = entry_for(&mats[0]).approx_bytes();
        // Room for about two entries.
        let cache = FactorCache::new(one * 2 + one / 2);
        for m in &mats {
            cache.insert(gplu_core::pattern_fingerprint(m), entry_for(m));
        }
        assert!(cache.len() < 4, "budget must force eviction");
        assert!(cache.counters().evictions > 0);
        assert!(cache.used_bytes() <= cache.capacity());
        // Most recently inserted pattern survives.
        assert!(cache
            .lookup(gplu_core::pattern_fingerprint(&mats[3]))
            .is_some());
    }

    #[test]
    fn oversize_entries_are_served_uncached() {
        let a = random_dominant(60, 3.0, 20);
        let cache = FactorCache::new(16); // comically small
        let arc = cache.insert(gplu_core::pattern_fingerprint(&a), entry_for(&a));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.counters().oversize_skipped, 1);
        // The handle still works.
        assert!(arc.plan.n() == 60);
    }

    #[test]
    fn evicted_entries_stay_alive_for_holders() {
        let a = random_dominant(60, 3.0, 30);
        let b = random_dominant(60, 3.0, 31);
        let one = entry_for(&a).approx_bytes();
        let cache = FactorCache::new(one + one / 4); // exactly one fits
        let held = cache.insert(gplu_core::pattern_fingerprint(&a), entry_for(&a));
        cache.insert(gplu_core::pattern_fingerprint(&b), entry_for(&b));
        assert!(cache.lookup(gplu_core::pattern_fingerprint(&a)).is_none());
        // The evicted plan still refactorizes correctly.
        let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        assert!(held.plan.refactorize(&gpu, &a).is_ok());
    }

    #[test]
    fn insert_race_keeps_the_first_entry() {
        let a = random_dominant(60, 3.0, 40);
        let fp = gplu_core::pattern_fingerprint(&a);
        let cache = FactorCache::new(64 << 20);
        let first = cache.insert(fp, entry_for(&a));
        let second = cache.insert(fp, entry_for(&a));
        assert!(Arc::ptr_eq(&first, &second), "first insertion wins");
        assert_eq!(cache.counters().insertions, 1);
        assert_eq!(cache.len(), 1);
    }
}
