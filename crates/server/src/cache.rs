//! The tiered pattern-keyed factor cache.
//!
//! Key: the structure-only XXH64 fingerprint from
//! [`gplu_core::pattern_fingerprint`]. Value: every pattern-only artifact
//! a repeat factorization reuses — the [`RefactorPlan`] (permutations,
//! filled pattern, level schedule, pivot cache, value-scatter maps) and
//! the batched [`TriSolvePlan`] — plus the most recent factors keyed by
//! the *content* fingerprint, so a byte-identical resubmission skips the
//! numeric kernels entirely.
//!
//! # Tiers
//!
//! ```text
//!   device LRU ──demote──▶ host tier ──(write-behind)──▶ disk tier
//!       ▲                      │                            │
//!       └─────promote──────────┴────────promote─────────────┘
//! ```
//!
//! * **Device** — the hot set. Memory accounting rides the simulator's
//!   own arena: the cache owns a [`DeviceMemory`] of the configured
//!   budget and backs every resident entry with a real allocation in it.
//!   Insertion evicts least-recently-used entries until the allocation
//!   fits; an entry larger than the whole budget is simply not cached.
//! * **Host** — a separately budgeted in-memory tier. Plans evicted from
//!   the device arena *demote* here instead of dropping; its accounting
//!   is a plain byte counter, never the device arena (demoted bytes must
//!   not stay charged against device capacity — the arena is freed
//!   before the host charge is taken, so the two budgets never
//!   double-count one entry).
//! * **Disk** — a persistent [`PlanStore`] of
//!   [`gplu_core::encode_plan`] snapshots (sectioned, checksummed,
//!   written atomically). Population is *write-behind*: workers enqueue
//!   newly built plans onto a flusher thread and never block on I/O. A
//!   load that fails its checksum, schema-version or fingerprint guard
//!   is rejected (counted, logged as a [`RecoveryAction`] event, and the
//!   bad file is removed) and the caller falls back to a cold
//!   factorization — corruption can cost time, never correctness.
//!   [`DISK_FAILURE_LIMIT`] consecutive I/O failures flip the tier into
//!   the `down` degraded mode: reads and writes stop, the service keeps
//!   running memory-only, and the state is surfaced in reports.
//!
//! A hit on any tier *promotes* the entry to the device tier (possibly
//! demoting someone else). Entries are handed out as `Arc`s, so eviction
//! frees the *budget* immediately but the artifacts live until the last
//! in-flight job drops its reference — eviction can never corrupt a
//! running refactorization (asserted in `tests/service.rs`).

use gplu_checkpoint::{CheckpointError, PlanStore};
use gplu_core::{
    decode_plan, encode_plan, LuFactorization, Phase, RecoveryAction, RecoveryLog, RefactorPlan,
};
use gplu_numeric::TriSolvePlan;
use gplu_sim::{DeviceAlloc, DeviceMemory};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// Consecutive disk-tier I/O failures that flip the tier into the
/// `down` degraded mode (isolated per-entry corruption does not count —
/// only store-level read/write failures do).
pub const DISK_FAILURE_LIMIT: u64 = 3;

/// One cached pattern: the reusable plans plus the latest factors.
#[derive(Debug)]
pub struct CachedFactor {
    /// The refactorization fast path for this pattern.
    pub plan: RefactorPlan,
    /// Batched triangular-solve schedule for this pattern's factors.
    pub solve: TriSolvePlan,
    /// Most recent factors, keyed by the value fingerprint that produced
    /// them ([`gplu_core::matrix_fingerprint`]).
    latest: Mutex<Option<(u64, Arc<LuFactorization>)>>,
}

impl CachedFactor {
    /// A fresh entry with no factors yet.
    pub fn new(plan: RefactorPlan, solve: TriSolvePlan) -> Self {
        CachedFactor {
            plan,
            solve,
            latest: Mutex::new(None),
        }
    }

    /// The factors for exactly these values, if they are the ones most
    /// recently produced for this pattern.
    pub fn latest_for(&self, value_fp: u64) -> Option<Arc<LuFactorization>> {
        let guard = self.latest.lock().unwrap();
        guard
            .as_ref()
            .filter(|(fp, _)| *fp == value_fp)
            .map(|(_, f)| Arc::clone(f))
    }

    /// Publishes the factors produced for `value_fp`.
    pub fn store_latest(&self, value_fp: u64, f: Arc<LuFactorization>) {
        *self.latest.lock().unwrap() = Some((value_fp, f));
    }

    /// Bytes this entry charges against the cache budget.
    pub fn approx_bytes(&self) -> u64 {
        self.plan.approx_bytes() + self.solve.approx_bytes()
    }
}

/// Which tier a lookup was served from (hit provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Resident in the device arena.
    Device,
    /// Found in the host tier and promoted.
    Host,
    /// Deserialized from the persistent store and promoted.
    Disk,
}

#[derive(Debug)]
struct Slot {
    entry: Arc<CachedFactor>,
    alloc: DeviceAlloc,
    stamp: u64,
}

#[derive(Debug)]
struct HostSlot {
    entry: Arc<CachedFactor>,
    bytes: u64,
    stamp: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<u64, Slot>,
    host: HashMap<u64, HostSlot>,
    host_used: u64,
    tick: u64,
}

/// Monotone counters the service report exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Pattern lookups served from the device tier.
    pub hits: u64,
    /// Pattern lookups rescued by the host tier (promoted on hit).
    pub host_hits: u64,
    /// Pattern lookups rescued by the disk tier (decoded + promoted).
    pub disk_hits: u64,
    /// Pattern lookups that found nothing on any tier.
    pub misses: u64,
    /// Entries inserted (== plans built *and* device-cached).
    pub insertions: u64,
    /// Entries whose device allocation was released (demoted or removed).
    pub evictions: u64,
    /// Device evictions that landed in the host tier instead of dropping.
    pub demotions: u64,
    /// Entries dropped from the host tier to fit its budget.
    pub host_evictions: u64,
    /// Host/disk entries promoted back into the device tier.
    pub promotions: u64,
    /// Plans durably persisted by the write-behind flusher.
    pub disk_writes: u64,
    /// Flusher writes that failed (each counts toward tier-down).
    pub disk_write_failures: u64,
    /// Disk reads that failed at the I/O level (count toward tier-down).
    pub disk_read_failures: u64,
    /// Persisted entries rejected by checksum/schema/fingerprint guards
    /// (each one also leaves a [`RecoveryLog`] event and removes the bad
    /// file; the lookup falls back cold).
    pub disk_rejects: u64,
    /// Plans repopulated into the host tier by a boot-time rewarm.
    pub rewarmed: u64,
    /// Entries too large for the whole device budget, served uncached.
    pub oversize_skipped: u64,
}

/// What the write-behind flusher thread consumes, in order. `Flush` is
/// the drain barrier: its ack means every message enqueued before it has
/// been applied to the store.
enum FlushMsg {
    Persist(u64, Arc<CachedFactor>),
    Remove(u64),
    Flush(mpsc::SyncSender<()>),
}

/// Disk-tier state shared between the cache handle and the flusher.
#[derive(Debug, Default)]
struct DiskStats {
    writes: AtomicU64,
    write_failures: AtomicU64,
    read_failures: AtomicU64,
    consecutive_failures: AtomicU64,
    down: AtomicBool,
}

impl DiskStats {
    fn ok(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
    }

    fn fail(&self) {
        let c = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if c >= DISK_FAILURE_LIMIT {
            self.down.store(true, Ordering::SeqCst);
        }
    }
}

#[derive(Debug)]
struct DiskTier {
    store: Arc<PlanStore>,
    stats: Arc<DiskStats>,
    tx: Mutex<Option<mpsc::Sender<FlushMsg>>>,
    flusher: Mutex<Option<thread::JoinHandle<()>>>,
}

impl DiskTier {
    fn send(&self, msg: FlushMsg) {
        if let Some(tx) = self.tx.lock().unwrap().as_ref() {
            let _ = tx.send(msg);
        }
    }
}

fn flusher_loop(store: &PlanStore, stats: &DiskStats, rx: &mpsc::Receiver<FlushMsg>) {
    for msg in rx.iter() {
        match msg {
            FlushMsg::Persist(key, entry) => {
                if stats.down.load(Ordering::SeqCst) {
                    continue;
                }
                let snap = encode_plan(&entry.plan);
                match store.save(key, &snap) {
                    Ok(_) => {
                        stats.writes.fetch_add(1, Ordering::Relaxed);
                        stats.ok();
                    }
                    Err(_) => {
                        stats.write_failures.fetch_add(1, Ordering::Relaxed);
                        stats.fail();
                    }
                }
            }
            FlushMsg::Remove(key) => {
                if !stats.down.load(Ordering::SeqCst) {
                    let _ = store.remove(key);
                }
            }
            FlushMsg::Flush(ack) => {
                let _ = ack.send(());
            }
        }
    }
}

/// LRU pattern cache tiered device → host → disk. See the module docs
/// for the tier state machine.
#[derive(Debug)]
pub struct FactorCache {
    inner: Mutex<Inner>,
    mem: DeviceMemory,
    host_budget: u64,
    disk: Option<DiskTier>,
    /// Audit trail of rejected persisted entries (satellite of the "no
    /// wrong answers" contract: every cold fallback is documented).
    rejects: Mutex<RecoveryLog>,
    hits: AtomicU64,
    host_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    demotions: AtomicU64,
    host_evictions: AtomicU64,
    promotions: AtomicU64,
    disk_rejects: AtomicU64,
    rewarmed: AtomicU64,
    oversize_skipped: AtomicU64,
}

impl FactorCache {
    /// A device-only cache with `budget_bytes` of accounting capacity
    /// (no host tier, no persistence — the original single-tier shape).
    pub fn new(budget_bytes: u64) -> Self {
        Self::with_tiers(budget_bytes, 0, None)
    }

    /// A tiered cache: device arena of `device_budget_bytes`, host tier
    /// of `host_budget_bytes` (0 disables demotion), and an optional
    /// persistent store. When a store is given, a write-behind flusher
    /// thread is started; it is joined on drop.
    pub fn with_tiers(
        device_budget_bytes: u64,
        host_budget_bytes: u64,
        store: Option<PlanStore>,
    ) -> Self {
        let disk = store.map(|store| {
            let store = Arc::new(store);
            let stats = Arc::new(DiskStats::default());
            let (tx, rx) = mpsc::channel();
            let flusher = {
                let store = Arc::clone(&store);
                let stats = Arc::clone(&stats);
                thread::spawn(move || flusher_loop(&store, &stats, &rx))
            };
            DiskTier {
                store,
                stats,
                tx: Mutex::new(Some(tx)),
                flusher: Mutex::new(Some(flusher)),
            }
        });
        FactorCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                host: HashMap::new(),
                host_used: 0,
                tick: 0,
            }),
            mem: DeviceMemory::new(device_budget_bytes),
            host_budget: host_budget_bytes,
            disk,
            rejects: Mutex::new(RecoveryLog::default()),
            hits: AtomicU64::new(0),
            host_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            host_evictions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            disk_rejects: AtomicU64::new(0),
            rewarmed: AtomicU64::new(0),
            oversize_skipped: AtomicU64::new(0),
        }
    }

    /// Looks up a pattern across all tiers and bumps its recency.
    pub fn lookup(&self, pattern_fp: u64) -> Option<Arc<CachedFactor>> {
        self.lookup_tiered(pattern_fp).map(|(entry, _)| entry)
    }

    /// Looks up a pattern and reports which tier served it. A host or
    /// disk hit promotes the entry to the device tier (possibly demoting
    /// the device LRU).
    pub fn lookup_tiered(&self, pattern_fp: u64) -> Option<(Arc<CachedFactor>, CacheTier)> {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.map.get_mut(&pattern_fp) {
                slot.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some((Arc::clone(&slot.entry), CacheTier::Device));
            }
            if let Some(hs) = inner.host.remove(&pattern_fp) {
                inner.host_used -= hs.bytes;
                self.host_hits.fetch_add(1, Ordering::Relaxed);
                self.promotions.fetch_add(1, Ordering::Relaxed);
                let entry = Arc::clone(&hs.entry);
                self.insert_locked(&mut inner, pattern_fp, hs.entry, hs.bytes);
                return Some((entry, CacheTier::Host));
            }
        }
        // Disk reads happen outside the map lock: deserialization is the
        // slow path and must not stall concurrent device hits.
        if let Some(entry) = self.load_from_disk(pattern_fp) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.promotions.fetch_add(1, Ordering::Relaxed);
            let bytes = entry.approx_bytes().max(1);
            let mut inner = self.inner.lock().unwrap();
            if let Some(slot) = inner.map.get(&pattern_fp) {
                // Raced another worker's promotion; share its entry.
                return Some((Arc::clone(&slot.entry), CacheTier::Disk));
            }
            self.insert_locked(&mut inner, pattern_fp, Arc::clone(&entry), bytes);
            return Some((entry, CacheTier::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts an entry, evicting (demoting) LRU patterns until its
    /// allocation fits, and enqueues it for write-behind persistence.
    ///
    /// Returns the shared handle either way; when the entry exceeds the
    /// entire device budget it is returned uncached (the job still
    /// completes — the cache only ever trades memory for speed, never
    /// correctness). If another worker raced the same pattern in, the
    /// existing entry wins and the new one is dropped.
    pub fn insert(&self, pattern_fp: u64, entry: CachedFactor) -> Arc<CachedFactor> {
        let bytes = entry.approx_bytes().max(1);
        let entry = Arc::new(entry);
        let winner = {
            let mut inner = self.inner.lock().unwrap();
            if let Some(slot) = inner.map.get(&pattern_fp) {
                // Lost a cold-miss race: both workers built plans, first
                // insertion wins so every later job shares one entry.
                return Arc::clone(&slot.entry);
            }
            if let Some(hs) = inner.host.remove(&pattern_fp) {
                // The pattern was demoted (or rewarmed) concurrently;
                // the resident artifacts win over the rebuilt ones.
                inner.host_used -= hs.bytes;
                self.promotions.fetch_add(1, Ordering::Relaxed);
                let existing = Arc::clone(&hs.entry);
                self.insert_locked(&mut inner, pattern_fp, hs.entry, hs.bytes);
                return existing;
            }
            if self.insert_locked(&mut inner, pattern_fp, Arc::clone(&entry), bytes) {
                self.insertions.fetch_add(1, Ordering::Relaxed);
            }
            Arc::clone(&entry)
        };
        // Write-behind: persistence never runs under the map lock and
        // never blocks the worker that built the plan.
        if let Some(disk) = &self.disk {
            if !disk.stats.down.load(Ordering::SeqCst) {
                disk.send(FlushMsg::Persist(pattern_fp, Arc::clone(&winner)));
            }
        }
        winner
    }

    /// Device-tier insertion under the lock: evicts (demotes) the LRU
    /// until the arena allocation fits. Returns false when the entry is
    /// bigger than the whole device budget.
    fn insert_locked(
        &self,
        inner: &mut Inner,
        pattern_fp: u64,
        entry: Arc<CachedFactor>,
        bytes: u64,
    ) -> bool {
        loop {
            match self.mem.alloc(bytes) {
                Ok(alloc) => {
                    inner.tick += 1;
                    let stamp = inner.tick;
                    inner.map.insert(
                        pattern_fp,
                        Slot {
                            entry,
                            alloc,
                            stamp,
                        },
                    );
                    return true;
                }
                Err(_) => {
                    let lru = inner
                        .map
                        .iter()
                        .min_by_key(|(_, s)| s.stamp)
                        .map(|(fp, _)| *fp);
                    match lru {
                        Some(fp) => self.demote_locked(inner, fp),
                        None => {
                            self.oversize_skipped.fetch_add(1, Ordering::Relaxed);
                            return false;
                        }
                    }
                }
            }
        }
    }

    /// Moves one entry device → host. The arena allocation is freed
    /// *before* the host byte charge is taken, so an entry is only ever
    /// accounted against one tier's budget at a time. With no host
    /// budget the entry simply drops (any in-flight `Arc` holders keep
    /// it alive; the disk tier may still hold its plan).
    fn demote_locked(&self, inner: &mut Inner, victim_fp: u64) {
        let slot = inner.map.remove(&victim_fp).expect("lru key present");
        self.mem.free(slot.alloc).expect("cache alloc valid");
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let bytes = slot.entry.approx_bytes().max(1);
        if bytes > self.host_budget {
            return;
        }
        while inner.host_used + bytes > self.host_budget {
            let lru = inner
                .host
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(fp, _)| *fp);
            match lru {
                Some(fp) => {
                    let hs = inner.host.remove(&fp).expect("host lru present");
                    inner.host_used -= hs.bytes;
                    self.host_evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
        inner.tick += 1;
        let stamp = inner.tick;
        inner.host.insert(
            victim_fp,
            HostSlot {
                entry: slot.entry,
                bytes,
                stamp,
            },
        );
        inner.host_used += bytes;
        self.demotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Loads and validates a persisted plan. Corrupt, truncated,
    /// cross-version, or wrong-fingerprint entries are rejected: counted,
    /// recorded in the [`RecoveryLog`], and the bad file is removed so
    /// the next lookup goes straight to the cold path.
    fn load_from_disk(&self, pattern_fp: u64) -> Option<Arc<CachedFactor>> {
        let disk = self.disk.as_ref()?;
        if disk.stats.down.load(Ordering::SeqCst) {
            return None;
        }
        match disk.store.load(pattern_fp) {
            Ok(None) => None,
            Ok(Some(snap)) => match decode_plan(&snap, pattern_fp) {
                Ok(plan) => {
                    disk.stats.ok();
                    let solve = TriSolvePlan::new(plan.lu_pattern());
                    Some(Arc::new(CachedFactor::new(plan, solve)))
                }
                Err(e) => {
                    self.reject_disk_entry(disk, pattern_fp, &e.to_string());
                    None
                }
            },
            Err(CheckpointError::Corrupt(msg)) => {
                self.reject_disk_entry(disk, pattern_fp, &msg);
                None
            }
            Err(CheckpointError::Io(_)) => {
                // A store-level read failure (unreadable file, injected
                // disk fault): counts toward tier-down, the entry itself
                // is not condemned.
                disk.stats.read_failures.fetch_add(1, Ordering::Relaxed);
                disk.stats.fail();
                None
            }
        }
    }

    fn reject_disk_entry(&self, disk: &DiskTier, key: u64, reason: &str) {
        self.disk_rejects.fetch_add(1, Ordering::Relaxed);
        self.rejects.lock().unwrap().record(
            Phase::Cache,
            RecoveryAction::DiskEntryRejected {
                key,
                reason: reason.to_string(),
            },
        );
        disk.send(FlushMsg::Remove(key));
    }

    /// Repopulates the host tier from the persistent store (boot-time
    /// warm restart). Plans are decoded and validated exactly as on a
    /// lookup — rejects fall out with the same audit trail — and land in
    /// the host tier (not the device arena: first use promotes them, so
    /// the device LRU still reflects live traffic). Returns how many
    /// plans were rewarmed.
    pub fn rewarm(&self) -> usize {
        let Some(disk) = &self.disk else { return 0 };
        let keys = match disk.store.keys() {
            Ok(keys) => keys,
            Err(_) => {
                disk.stats.read_failures.fetch_add(1, Ordering::Relaxed);
                disk.stats.fail();
                return 0;
            }
        };
        let mut count = 0usize;
        for key in keys {
            if disk.stats.down.load(Ordering::SeqCst) {
                break;
            }
            let Some(entry) = self.load_from_disk(key) else {
                continue;
            };
            let bytes = entry.approx_bytes().max(1);
            if bytes > self.host_budget {
                continue;
            }
            let mut inner = self.inner.lock().unwrap();
            if inner.map.contains_key(&key) || inner.host.contains_key(&key) {
                continue;
            }
            while inner.host_used + bytes > self.host_budget {
                let lru = inner
                    .host
                    .iter()
                    .min_by_key(|(_, s)| s.stamp)
                    .map(|(fp, _)| *fp);
                match lru {
                    Some(fp) => {
                        let hs = inner.host.remove(&fp).expect("host lru present");
                        inner.host_used -= hs.bytes;
                        self.host_evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
            if inner.host_used + bytes > self.host_budget {
                continue;
            }
            inner.tick += 1;
            let stamp = inner.tick;
            inner.host.insert(
                key,
                HostSlot {
                    entry,
                    bytes,
                    stamp,
                },
            );
            inner.host_used += bytes;
            self.rewarmed.fetch_add(1, Ordering::Relaxed);
            count += 1;
        }
        count
    }

    /// Drops a pattern's entry from every tier and releases its budget
    /// (used when the residual gate rejects factors produced from a
    /// cached plan — the artifacts are suspect for the pattern's current
    /// traffic, including the persisted copy). In-flight holders keep
    /// their `Arc`s; only the cache forgets. Returns whether an entry
    /// was present in a memory tier.
    pub fn remove(&self, pattern_fp: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let mut present = false;
        if let Some(slot) = inner.map.remove(&pattern_fp) {
            self.mem.free(slot.alloc).expect("cache alloc valid");
            self.evictions.fetch_add(1, Ordering::Relaxed);
            present = true;
        }
        if let Some(hs) = inner.host.remove(&pattern_fp) {
            inner.host_used -= hs.bytes;
            self.host_evictions.fetch_add(1, Ordering::Relaxed);
            present = true;
        }
        drop(inner);
        if let Some(disk) = &self.disk {
            disk.send(FlushMsg::Remove(pattern_fp));
        }
        present
    }

    /// Blocks until the write-behind flusher has applied every message
    /// enqueued so far (the drain half of drain-and-flush shutdown).
    /// Returns false when the disk tier is down or gone.
    pub fn flush(&self) -> bool {
        let Some(disk) = &self.disk else { return true };
        if disk.stats.down.load(Ordering::SeqCst) {
            return false;
        }
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        disk.send(FlushMsg::Flush(ack_tx));
        ack_rx.recv().is_ok()
    }

    /// Simulates a crash of the process owning this cache: pending
    /// write-behind work is abandoned (the flusher drops it), so only
    /// entries already durable on disk survive — exactly the torn state
    /// the restart chaos suite recovers from.
    pub fn simulate_crash(&self) {
        if let Some(disk) = &self.disk {
            disk.stats.down.store(true, Ordering::SeqCst);
        }
    }

    /// Device-cached patterns right now.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is device-cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Host-tier entries right now.
    pub fn host_len(&self) -> usize {
        self.inner.lock().unwrap().host.len()
    }

    /// Device budget bytes currently charged (arena accounting; covers
    /// only device-resident entries — demoted entries are charged to
    /// [`FactorCache::host_used_bytes`] instead, never both).
    pub fn used_bytes(&self) -> u64 {
        self.mem.used_bytes()
    }

    /// Host-tier bytes currently charged.
    pub fn host_used_bytes(&self) -> u64 {
        self.inner.lock().unwrap().host_used
    }

    /// Configured device budget.
    pub fn capacity(&self) -> u64 {
        self.mem.capacity()
    }

    /// Configured host-tier budget.
    pub fn host_capacity(&self) -> u64 {
        self.host_budget
    }

    /// True when this cache was built with a persistent tier.
    pub fn disk_enabled(&self) -> bool {
        self.disk.is_some()
    }

    /// True when the persistent tier has degraded to `down` (too many
    /// consecutive I/O failures, or a simulated crash).
    pub fn disk_down(&self) -> bool {
        self.disk
            .as_ref()
            .is_some_and(|d| d.stats.down.load(Ordering::SeqCst))
    }

    /// Audit log of every rejected persisted entry.
    pub fn rejects_log(&self) -> RecoveryLog {
        self.rejects.lock().unwrap().clone()
    }

    /// Monotone counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        let (disk_writes, disk_write_failures, disk_read_failures) = match &self.disk {
            Some(d) => (
                d.stats.writes.load(Ordering::Relaxed),
                d.stats.write_failures.load(Ordering::Relaxed),
                d.stats.read_failures.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0),
        };
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            host_hits: self.host_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            host_evictions: self.host_evictions.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            disk_writes,
            disk_write_failures,
            disk_read_failures,
            disk_rejects: self.disk_rejects.load(Ordering::Relaxed),
            rewarmed: self.rewarmed.load(Ordering::Relaxed),
            oversize_skipped: self.oversize_skipped.load(Ordering::Relaxed),
        }
    }
}

impl Drop for FactorCache {
    fn drop(&mut self) {
        if let Some(disk) = &self.disk {
            // Closing the channel ends the flusher's loop after it has
            // drained whatever was already enqueued (or skipped it, when
            // the tier is down / crashed).
            disk.tx.lock().unwrap().take();
            if let Some(h) = disk.flusher.lock().unwrap().take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_core::{LuFactorization, LuOptions};
    use gplu_sim::{Gpu, GpuConfig};
    use gplu_sparse::gen::random::random_dominant;
    use gplu_sparse::Csr;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "gplu-factor-cache-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn entry_for(a: &Csr) -> CachedFactor {
        let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        let f = LuFactorization::compute(&gpu, a, &LuOptions::default()).expect("ok");
        let plan = f.refactor_plan(a, &LuOptions::default()).expect("plan");
        let solve = TriSolvePlan::new(&f.lu);
        CachedFactor::new(plan, solve)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let a = random_dominant(60, 3.0, 1);
        let fp = gplu_core::pattern_fingerprint(&a);
        let cache = FactorCache::new(64 << 20);
        assert!(cache.lookup(fp).is_none());
        cache.insert(fp, entry_for(&a));
        assert!(cache.lookup(fp).is_some());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
        assert!(cache.used_bytes() > 0);
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let mats: Vec<Csr> = (0..4).map(|s| random_dominant(60, 3.0, 10 + s)).collect();
        let one = entry_for(&mats[0]).approx_bytes();
        // Room for about two entries.
        let cache = FactorCache::new(one * 2 + one / 2);
        for m in &mats {
            cache.insert(gplu_core::pattern_fingerprint(m), entry_for(m));
        }
        assert!(cache.len() < 4, "budget must force eviction");
        assert!(cache.counters().evictions > 0);
        assert!(cache.used_bytes() <= cache.capacity());
        // Most recently inserted pattern survives.
        assert!(cache
            .lookup(gplu_core::pattern_fingerprint(&mats[3]))
            .is_some());
    }

    #[test]
    fn oversize_entries_are_served_uncached() {
        let a = random_dominant(60, 3.0, 20);
        let cache = FactorCache::new(16); // comically small
        let arc = cache.insert(gplu_core::pattern_fingerprint(&a), entry_for(&a));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.counters().oversize_skipped, 1);
        // The handle still works.
        assert!(arc.plan.n() == 60);
    }

    #[test]
    fn evicted_entries_stay_alive_for_holders() {
        let a = random_dominant(60, 3.0, 30);
        let b = random_dominant(60, 3.0, 31);
        let one = entry_for(&a).approx_bytes();
        let cache = FactorCache::new(one + one / 4); // exactly one fits
        let held = cache.insert(gplu_core::pattern_fingerprint(&a), entry_for(&a));
        cache.insert(gplu_core::pattern_fingerprint(&b), entry_for(&b));
        assert!(cache.lookup(gplu_core::pattern_fingerprint(&a)).is_none());
        // The evicted plan still refactorizes correctly.
        let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        assert!(held.plan.refactorize(&gpu, &a).is_ok());
    }

    #[test]
    fn insert_race_keeps_the_first_entry() {
        let a = random_dominant(60, 3.0, 40);
        let fp = gplu_core::pattern_fingerprint(&a);
        let cache = FactorCache::new(64 << 20);
        let first = cache.insert(fp, entry_for(&a));
        let second = cache.insert(fp, entry_for(&a));
        assert!(Arc::ptr_eq(&first, &second), "first insertion wins");
        assert_eq!(cache.counters().insertions, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn demotion_moves_bytes_between_budgets_without_double_counting() {
        let mats: Vec<Csr> = (0..3).map(|s| random_dominant(60, 3.0, 80 + s)).collect();
        let sizes: Vec<u64> = mats.iter().map(|m| entry_for(m).approx_bytes()).collect();
        let one = *sizes.iter().max().unwrap();
        // Device fits one entry, host fits all three.
        let cache = FactorCache::with_tiers(one + one / 4, one * 4, None);
        let fps: Vec<u64> = mats
            .iter()
            .map(|m| {
                let fp = gplu_core::pattern_fingerprint(m);
                cache.insert(fp, entry_for(m));
                fp
            })
            .collect();
        let c = cache.counters();
        assert!(c.demotions >= 2, "demotions: {}", c.demotions);
        assert_eq!(cache.len(), 1, "device holds exactly one");
        assert_eq!(cache.host_len(), 2, "the demoted two live in host");
        // The double-count regression: arena bytes cover only the
        // device-resident entry; the demoted entries are charged to the
        // host counter instead — never both.
        assert!(cache.used_bytes() <= cache.capacity());
        assert!(
            cache.used_bytes() < one * 2,
            "arena must not keep demoted bytes"
        );
        assert!(cache.host_used_bytes() <= cache.host_capacity());
        assert_eq!(
            cache.host_used_bytes(),
            sizes[0] + sizes[1],
            "host tier charges exactly the demoted entries' bytes"
        );

        // A host hit promotes (demoting the current device resident).
        let (entry, tier) = cache.lookup_tiered(fps[0]).expect("host tier keeps it");
        assert_eq!(tier, CacheTier::Host);
        assert_eq!(entry.plan.n(), 60);
        let (_, tier) = cache.lookup_tiered(fps[0]).expect("now device-resident");
        assert_eq!(tier, CacheTier::Device);
        let c = cache.counters();
        assert_eq!(c.host_hits, 1);
        assert_eq!(c.hits, 1);
        assert!(c.promotions >= 1);
        assert!(cache.used_bytes() <= cache.capacity());
    }

    #[test]
    fn zero_host_budget_drops_demoted_entries() {
        let a = random_dominant(60, 3.0, 90);
        let b = random_dominant(60, 3.0, 91);
        let one = entry_for(&a).approx_bytes();
        let cache = FactorCache::with_tiers(one + one / 4, 0, None);
        cache.insert(gplu_core::pattern_fingerprint(&a), entry_for(&a));
        cache.insert(gplu_core::pattern_fingerprint(&b), entry_for(&b));
        assert_eq!(cache.host_len(), 0);
        assert_eq!(cache.host_used_bytes(), 0);
        assert_eq!(cache.counters().demotions, 0);
        assert!(cache.lookup(gplu_core::pattern_fingerprint(&a)).is_none());
    }

    #[test]
    fn disk_tier_persists_and_rescues_after_memory_loss() {
        let t = TempDir::new();
        let a = random_dominant(60, 3.0, 100);
        let fp = gplu_core::pattern_fingerprint(&a);
        {
            let store = PlanStore::open(&t.0).unwrap();
            let cache = FactorCache::with_tiers(64 << 20, 64 << 20, Some(store));
            cache.insert(fp, entry_for(&a));
            assert!(cache.flush(), "flusher must drain");
            assert_eq!(cache.counters().disk_writes, 1);
        } // cache dropped: all memory tiers gone, disk survives

        let store = PlanStore::open(&t.0).unwrap();
        let cache = FactorCache::with_tiers(64 << 20, 64 << 20, Some(store));
        let (entry, tier) = cache.lookup_tiered(fp).expect("disk tier rescues");
        assert_eq!(tier, CacheTier::Disk);
        // The rescued plan refactorizes to the same factors as a cold run.
        let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        let warm = entry
            .plan
            .refactorize(&gpu, &a)
            .expect("rescued plan works");
        let gpu2 = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        let cold = LuFactorization::compute(&gpu2, &a, &LuOptions::default()).unwrap();
        assert_eq!(warm.lu.vals, cold.lu.vals, "bit-identical to cold");
        // Promoted: second lookup is a device hit.
        let (_, tier) = cache.lookup_tiered(fp).expect("promoted");
        assert_eq!(tier, CacheTier::Device);
    }

    #[test]
    fn rewarm_repopulates_the_host_tier() {
        let t = TempDir::new();
        let mats: Vec<Csr> = (0..3).map(|s| random_dominant(60, 3.0, 110 + s)).collect();
        {
            let store = PlanStore::open(&t.0).unwrap();
            let cache = FactorCache::with_tiers(64 << 20, 64 << 20, Some(store));
            for m in &mats {
                cache.insert(gplu_core::pattern_fingerprint(m), entry_for(m));
            }
            assert!(cache.flush());
        }
        let store = PlanStore::open(&t.0).unwrap();
        let cache = FactorCache::with_tiers(64 << 20, 64 << 20, Some(store));
        assert_eq!(cache.rewarm(), 3);
        assert_eq!(cache.host_len(), 3);
        assert_eq!(cache.len(), 0, "rewarm fills host, not device");
        for m in &mats {
            let (_, tier) = cache
                .lookup_tiered(gplu_core::pattern_fingerprint(m))
                .expect("rewarmed");
            assert_eq!(tier, CacheTier::Host);
        }
        assert_eq!(cache.counters().rewarmed, 3);
    }

    #[test]
    fn corrupt_disk_entries_are_rejected_with_an_audit_trail() {
        let t = TempDir::new();
        let a = random_dominant(60, 3.0, 120);
        let fp = gplu_core::pattern_fingerprint(&a);
        {
            let store = PlanStore::open(&t.0).unwrap();
            let cache = FactorCache::with_tiers(64 << 20, 0, Some(store));
            cache.insert(fp, entry_for(&a));
            assert!(cache.flush());
        }
        // Flip bytes in the middle of the persisted plan.
        let file = t.0.join(format!("plan-{fp:016x}.ckpt"));
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&file, &bytes).unwrap();

        let store = PlanStore::open(&t.0).unwrap();
        let cache = FactorCache::with_tiers(64 << 20, 0, Some(store));
        assert!(cache.lookup(fp).is_none(), "corrupt entry must miss");
        let c = cache.counters();
        assert_eq!(c.disk_rejects, 1);
        assert!(!cache.disk_down(), "one bad entry must not down the tier");
        let log = cache.rejects_log();
        assert_eq!(log.len(), 1);
        assert!(
            matches!(
                log.events()[0].action,
                RecoveryAction::DiskEntryRejected { key, .. } if key == fp
            ),
            "audit event: {log:?}"
        );
        assert!(cache.flush(), "removal of the bad file is flushed");
        assert!(!file.exists(), "rejected entry must be removed");
    }

    #[test]
    fn crash_abandons_unflushed_writes() {
        let t = TempDir::new();
        let a = random_dominant(60, 3.0, 130);
        let fp = gplu_core::pattern_fingerprint(&a);
        let store = PlanStore::open(&t.0).unwrap();
        let cache = FactorCache::with_tiers(64 << 20, 0, Some(store));
        cache.simulate_crash();
        cache.insert(fp, entry_for(&a));
        drop(cache);
        let store = PlanStore::open(&t.0).unwrap();
        assert!(
            store.load(fp).unwrap().is_none(),
            "a crashed cache must not have persisted the pending plan"
        );
    }
}
