//! Seeded synthetic workloads for the stress subcommand and the
//! concurrency suite: a mix of *hot* circuit-transient traffic (few
//! patterns, drifting values — the paper's refactorization workload) and
//! *cold* one-off patterns (mesh / banded / random), with optional
//! per-job fault injection.

use crate::job::{JobKind, JobSpec};
use gplu_sim::FaultPlan;
use gplu_sparse::gen::circuit::{circuit, CircuitParams};
use gplu_sparse::gen::hard::HardKind;
use gplu_sparse::gen::mesh::{mesh, MeshParams};
use gplu_sparse::gen::random::{banded_dominant, random_dominant};
use gplu_sparse::Csr;

/// Workload shape.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Total jobs.
    pub jobs: usize,
    /// Distinct hot circuit patterns.
    pub hot_patterns: usize,
    /// Fraction of jobs drawn from the hot segment.
    pub hot_fraction: f64,
    /// Distinct value versions per hot pattern: the drift cycles, so
    /// repeats occur and the cached-solve tier gets traffic.
    pub value_versions: usize,
    /// Fraction of hot jobs submitted as [`JobKind::Solve`].
    pub solve_fraction: f64,
    /// Fraction of jobs drawn from the adversarial hard corpus
    /// ([`gplu_sparse::gen::hard`]): a small pool of ill-conditioned
    /// patterns resubmitted with drifting values, so the service's
    /// residual gate and pattern quarantine get real traffic. 0 disables.
    pub hard_fraction: f64,
    /// Every `fault_every`-th job carries a seeded [`FaultPlan`]
    /// (0 disables injection).
    pub fault_every: usize,
    /// Distinct tenants the jobs are spread across (round-robin-free:
    /// assignment is drawn from its own seeded stream so adding tenants
    /// never perturbs the matrix/kind/fault stream).
    pub tenants: usize,
    /// Matrix dimension of the hot circuit patterns.
    pub hot_n: usize,
    /// Matrix dimension scale of the cold patterns.
    pub cold_n: usize,
    /// Master seed; the whole job list is a pure function of it.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            jobs: 500,
            hot_patterns: 3,
            hot_fraction: 0.7,
            value_versions: 8,
            solve_fraction: 0.15,
            hard_fraction: 0.0,
            fault_every: 0,
            tenants: 4,
            hot_n: 300,
            cold_n: 200,
            seed: 1,
        }
    }
}

/// SplitMix64 — the repo-wide convention for deterministic test streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Applies deterministic value drift `version` to a base pattern —
/// same structure, different values.
fn drift_values(base: &Csr, version: u64) -> Csr {
    if version == 0 {
        return base.clone();
    }
    let mut m = base.clone();
    for (k, v) in m.vals.iter_mut().enumerate() {
        let wob = ((k as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(version.wrapping_mul(7919))
            % 97) as f64;
        *v *= 1.0 + wob / 1000.0;
    }
    m
}

/// Generates the job list. Deterministic in `params` (same seed → same
/// matrices, same kinds, same fault plans, same order).
pub fn generate_workload(params: &WorkloadParams) -> Vec<JobSpec> {
    let mut rng = params.seed ^ 0x5e55_1011_c0de_1234;
    // Tenant assignment draws from its own derived stream: the main
    // stream stays byte-identical to pre-tenant workloads, so every
    // seeded test and CI gate keeps its exact matrices and fault plans.
    let mut tenant_rng = params.seed ^ 0x7e4a_47a6_7e4a_47a6;
    let hot_bases: Vec<Csr> = (0..params.hot_patterns.max(1))
        .map(|k| {
            circuit(&CircuitParams {
                n: params.hot_n + k * 32,
                nnz_per_row: 6.0,
                seed: params.seed.wrapping_mul(1000).wrapping_add(k as u64),
                ..Default::default()
            })
        })
        .collect();

    // Adversarial pool: one base per hard family, sized off the cold
    // dimension. Hard traffic reuses these patterns with value drift so
    // the service's strike/quarantine machinery sees repeats.
    let hard_bases: Vec<Csr> = HardKind::ALL
        .iter()
        .map(|k| {
            k.generate(
                params.cold_n.max(16),
                params.seed.wrapping_mul(271).wrapping_add(17),
            )
        })
        .collect();

    let mut jobs = Vec::with_capacity(params.jobs);
    let mut cold_seq = 0u64;
    for i in 0..params.jobs {
        let r = splitmix(&mut rng);
        // Short-circuit keeps the rng stream (and thus every existing
        // seeded workload) byte-identical when hard traffic is disabled.
        let is_hard = params.hard_fraction > 0.0
            && (splitmix(&mut rng) % 1000) as f64 / 1000.0 < params.hard_fraction;
        let is_hot = !is_hard && (r % 1000) as f64 / 1000.0 < params.hot_fraction;
        let mut spec = if is_hard {
            let pattern = (splitmix(&mut rng) as usize) % hard_bases.len();
            let version = splitmix(&mut rng) % params.value_versions.max(1) as u64;
            let matrix = drift_values(&hard_bases[pattern], version);
            JobSpec::new(matrix, JobKind::Factorize)
        } else if is_hot {
            let pattern = (splitmix(&mut rng) as usize) % hot_bases.len();
            let version = splitmix(&mut rng) % params.value_versions.max(1) as u64;
            let matrix = drift_values(&hot_bases[pattern], version);
            let solve = (splitmix(&mut rng) % 1000) as f64 / 1000.0 < params.solve_fraction;
            let kind = if solve {
                let n = matrix.n_rows();
                let x: Vec<f64> = (0..n).map(|j| 1.0 + (j % 7) as f64 / 10.0).collect();
                JobKind::Solve {
                    rhs: vec![matrix.spmv(&x)],
                }
            } else {
                JobKind::Refactorize
            };
            JobSpec::new(matrix, kind).hot()
        } else {
            cold_seq += 1;
            let s = params.seed.wrapping_mul(77).wrapping_add(cold_seq);
            let n = params.cold_n + (splitmix(&mut rng) as usize % 64);
            let matrix = match cold_seq % 3 {
                0 => mesh(&MeshParams {
                    nx: (n as f64).sqrt() as usize + 2,
                    ny: (n as f64).sqrt() as usize + 2,
                    nz: 1,
                    dof: 1,
                    keep: 0.9,
                    seed: s,
                }),
                1 => banded_dominant(n, 4, s),
                _ => random_dominant(n, 4.0, s),
            };
            JobSpec::new(matrix, JobKind::Factorize)
        };
        if params.fault_every > 0 && (i + 1) % params.fault_every == 0 {
            spec = spec.with_fault(FaultPlan::from_seed(
                params.seed.wrapping_mul(31).wrapping_add(i as u64),
            ));
        }
        let tenant = splitmix(&mut tenant_rng) % params.tenants.max(1) as u64;
        jobs.push(spec.with_tenant(format!("t{tenant}")));
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_core::pattern_fingerprint;
    use std::collections::HashSet;

    #[test]
    fn workload_is_deterministic() {
        let p = WorkloadParams {
            jobs: 40,
            ..Default::default()
        };
        let a = generate_workload(&p);
        let b = generate_workload(&p);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix.vals, y.matrix.vals);
            assert_eq!(x.hot, y.hot);
            assert_eq!(x.fault.is_some(), y.fault.is_some());
        }
    }

    #[test]
    fn hot_jobs_share_few_patterns_and_cold_jobs_do_not() {
        let p = WorkloadParams {
            jobs: 120,
            hot_patterns: 3,
            ..Default::default()
        };
        let jobs = generate_workload(&p);
        let hot_fps: HashSet<u64> = jobs
            .iter()
            .filter(|j| j.hot)
            .map(|j| pattern_fingerprint(&j.matrix))
            .collect();
        assert_eq!(hot_fps.len(), 3, "hot traffic reuses the base patterns");
        let cold: Vec<u64> = jobs
            .iter()
            .filter(|j| !j.hot)
            .map(|j| pattern_fingerprint(&j.matrix))
            .collect();
        let cold_unique: HashSet<u64> = cold.iter().copied().collect();
        assert_eq!(cold.len(), cold_unique.len(), "cold patterns are one-offs");
        let hot_count = jobs.iter().filter(|j| j.hot).count();
        assert!(hot_count > jobs.len() / 2, "mix must be hot-dominated");
    }

    #[test]
    fn hard_traffic_reuses_a_small_adversarial_pool() {
        let p = WorkloadParams {
            jobs: 200,
            hard_fraction: 0.3,
            cold_n: 64,
            ..Default::default()
        };
        let jobs = generate_workload(&p);
        // Hard jobs are cold-marked Factorize jobs whose patterns come
        // from the 4-family pool — few distinct fingerprints, many jobs.
        let hot_fps: HashSet<u64> = jobs
            .iter()
            .filter(|j| j.hot)
            .map(|j| pattern_fingerprint(&j.matrix))
            .collect();
        let nonhot_fp_counts: std::collections::HashMap<u64, usize> = jobs
            .iter()
            .filter(|j| !j.hot)
            .map(|j| pattern_fingerprint(&j.matrix))
            .fold(std::collections::HashMap::new(), |mut m, fp| {
                *m.entry(fp).or_insert(0) += 1;
                m
            });
        let repeated: Vec<_> = nonhot_fp_counts
            .iter()
            .filter(|(fp, &c)| c > 1 && !hot_fps.contains(fp))
            .collect();
        assert!(
            (1..=4).contains(&repeated.len()),
            "hard pool must be small and reused: {} repeated patterns",
            repeated.len()
        );
        let hard_jobs: usize = repeated.iter().map(|(_, &c)| c).sum();
        assert!(
            hard_jobs > 20,
            "30% of 200 jobs should be hard, got {hard_jobs}"
        );
        // Determinism holds with hard traffic enabled.
        let again = generate_workload(&p);
        for (x, y) in jobs.iter().zip(&again) {
            assert_eq!(x.matrix.vals, y.matrix.vals);
        }
    }

    #[test]
    fn tenants_spread_without_perturbing_the_job_stream() {
        let base = WorkloadParams {
            jobs: 60,
            ..Default::default()
        };
        let a = generate_workload(&base);
        let tenant_set: HashSet<&str> = a.iter().map(|j| j.tenant.as_str()).collect();
        assert_eq!(tenant_set.len(), 4, "default 4 tenants all see traffic");
        // Changing the tenant count must not change any matrix, kind,
        // hot flag, or fault plan — only the tenant labels.
        let b = generate_workload(&WorkloadParams {
            tenants: 1,
            ..base.clone()
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix.vals, y.matrix.vals);
            assert_eq!(x.hot, y.hot);
            assert_eq!(x.fault.is_some(), y.fault.is_some());
            assert_eq!(y.tenant, "t0");
        }
    }

    #[test]
    fn fault_injection_marks_every_nth_job() {
        let p = WorkloadParams {
            jobs: 30,
            fault_every: 3,
            ..Default::default()
        };
        let jobs = generate_workload(&p);
        let faulted = jobs.iter().filter(|j| j.fault.is_some()).count();
        assert_eq!(faulted, 10);
    }
}
