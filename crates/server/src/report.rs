//! The service report: the `RunReport`-style JSON summary of a service
//! run, validated by `telemetry_check --service`.
//!
//! Schema v2 adds the live-observability sections captured from
//! [`crate::ServiceObs`] when the service runs with observability on:
//! `tiers` (per-tier job shares), `metrics` (the full registry
//! exposition), `tenants` (per-tenant latency quantiles), `slo` (the
//! sliding-window verdict `telemetry_check --slo` gates on), and
//! `drift` (the cost-model drift table).
//!
//! Schema v3 adds the tiered-cache surface: `warm_host` / `warm_disk`
//! job counts and shares, the `cache.host` subsection (budget,
//! residency, hits, demotions), the `cache.disk` subsection (enabled,
//! degraded `down` flag, write-behind and rejection counters, rewarm
//! count), and `jobs.load_shed` for degradation-aware admission.
//!
//! Schema v4 adds the device-fleet section: `fleet.devices`,
//! `fleet.degraded`, `fleet.dead` (dead device ordinals), and
//! `fleet.per_device` — one object per device with its job counts,
//! logical queue depth, homed plan bytes, and hot hit rate, so a fleet
//! `--min-hot-hit-rate` gate can see *which* device is cold.

use crate::cache::CacheCounters;
use crate::fleet::DeviceLoadSnapshot;
use crate::observe::{SloEval, SloSpec};
use crate::service::{SolverService, StatsSnapshot};
use gplu_core::DriftTable;
use gplu_trace::json::JsonValue;

/// Version tag of the service-report JSON schema.
pub const SERVICE_SCHEMA_VERSION: u64 = 4;

/// Linear-interpolation percentile over an unsorted sample (ns). `p` in
/// `[0, 100]`; returns 0.0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let rank = (p / 100.0) * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = rank - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// Everything the stress subcommand reports about a service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Counter snapshot at report time.
    pub stats: StatsSnapshot,
    /// Cache counters at report time.
    pub cache: CacheCounters,
    /// Patterns resident in the cache.
    pub cache_entries: usize,
    /// Cache budget bytes charged.
    pub cache_used_bytes: u64,
    /// Configured cache budget.
    pub cache_budget_bytes: u64,
    /// Patterns resident in the host tier.
    pub host_entries: usize,
    /// Host-tier bytes charged.
    pub host_used_bytes: u64,
    /// Configured host-tier budget (0 = tier disabled).
    pub host_budget_bytes: u64,
    /// Whether the service was configured with a persistent tier.
    pub disk_enabled: bool,
    /// Whether the persistent tier is in the `down` degraded mode.
    pub disk_down: bool,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Per-device fleet state, in device order (one entry for a
    /// single-device service).
    pub fleet: Vec<DeviceLoadSnapshot>,
    /// Full metrics-registry snapshot (`None` when observability off).
    pub metrics: Option<JsonValue>,
    /// Per-tenant latency quantiles (`None` when observability off).
    pub tenants: Option<JsonValue>,
    /// Sliding-window SLO verdict (`None` when observability off).
    pub slo_eval: Option<SloEval>,
    /// Cost-model drift table (`None` when observability off).
    pub drift_table: Option<DriftTable>,
}

impl ServiceReport {
    /// Snapshots a running service. SLO sections are evaluated against
    /// the threshold-free default spec (quantiles reported, nothing
    /// gated); use [`ServiceReport::capture_with_slo`] to gate.
    pub fn capture(svc: &SolverService) -> Self {
        Self::capture_with_slo(svc, None)
    }

    /// Snapshots a running service, evaluating the SLO window against
    /// `spec` when given.
    pub fn capture_with_slo(svc: &SolverService, spec: Option<&SloSpec>) -> Self {
        let obs = svc.observability();
        let default_spec = SloSpec::default();
        ServiceReport {
            stats: svc.stats(),
            cache: svc.cache_counters(),
            cache_entries: svc.cache().len(),
            cache_used_bytes: svc.cache().used_bytes(),
            cache_budget_bytes: svc.cache_budget(),
            host_entries: svc.cache().host_len(),
            host_used_bytes: svc.cache().host_used_bytes(),
            host_budget_bytes: svc.cache().host_capacity(),
            disk_enabled: svc.cache().disk_enabled(),
            disk_down: svc.cache().disk_down(),
            queue_cap: svc.queue_cap(),
            fleet: svc.fleet().snapshot(),
            metrics: obs.map(|o| o.registry().to_json()),
            tenants: obs.map(|o| o.tenants_json()),
            slo_eval: obs.map(|o| o.slo(spec.unwrap_or(&default_spec))),
            drift_table: obs.map(|o| o.drift_table()),
        }
    }

    /// The JSON document (`service_schema_version` 3).
    pub fn to_json(&self) -> JsonValue {
        let s = &self.stats;
        let completed = s.completed.max(1) as f64;
        let mut doc = JsonValue::obj()
            .set("service_schema_version", SERVICE_SCHEMA_VERSION)
            .set(
                "jobs",
                JsonValue::obj()
                    .set("submitted", s.submitted)
                    .set("completed", s.completed)
                    .set("failed", s.failed)
                    .set("cancelled", s.cancelled)
                    .set("deadline_dropped", s.deadline_dropped)
                    .set("cold", s.cold)
                    .set("warm", s.warm)
                    .set("warm_host", s.warm_host)
                    .set("warm_disk", s.warm_disk)
                    .set("cached_solve", s.cached_solve)
                    .set("load_shed", s.load_shed),
            )
            .set(
                "cache",
                JsonValue::obj()
                    .set("budget_bytes", self.cache_budget_bytes)
                    .set("used_bytes", self.cache_used_bytes)
                    .set("entries", self.cache_entries)
                    .set("hits", self.cache.hits)
                    .set("misses", self.cache.misses)
                    .set("insertions", self.cache.insertions)
                    .set("evictions", self.cache.evictions)
                    .set("oversize_skipped", self.cache.oversize_skipped)
                    .set("plans_built", s.plans_built)
                    .set("hot_jobs", s.hot_jobs)
                    .set("hot_hits", s.hot_hits)
                    .set("hot_hit_rate", s.hot_hit_rate())
                    .set(
                        "host",
                        JsonValue::obj()
                            .set("budget_bytes", self.host_budget_bytes)
                            .set("used_bytes", self.host_used_bytes)
                            .set("entries", self.host_entries)
                            .set("hits", self.cache.host_hits)
                            .set("demotions", self.cache.demotions)
                            .set("evictions", self.cache.host_evictions)
                            .set("promotions", self.cache.promotions),
                    )
                    .set(
                        "disk",
                        JsonValue::obj()
                            .set("enabled", self.disk_enabled)
                            .set("down", self.disk_down)
                            .set("hits", self.cache.disk_hits)
                            .set("writes", self.cache.disk_writes)
                            .set("write_failures", self.cache.disk_write_failures)
                            .set("read_failures", self.cache.disk_read_failures)
                            .set("rejects", self.cache.disk_rejects)
                            .set("rewarmed", self.cache.rewarmed),
                    ),
            )
            .set(
                "latency",
                JsonValue::obj()
                    .set("sim_p50_ns", percentile(&s.sim_ns, 50.0))
                    .set("sim_p95_ns", percentile(&s.sim_ns, 95.0))
                    .set("wall_p50_ns", percentile(&s.wall_ns, 50.0))
                    .set("wall_p95_ns", percentile(&s.wall_ns, 95.0)),
            )
            .set(
                "tiers",
                JsonValue::obj()
                    .set("cold_share", s.cold as f64 / completed)
                    .set("warm_share", s.warm as f64 / completed)
                    .set("warm_host_share", s.warm_host as f64 / completed)
                    .set("warm_disk_share", s.warm_disk as f64 / completed)
                    .set("cached_solve_share", s.cached_solve as f64 / completed)
                    .set("hot_hit_rate", s.hot_hit_rate()),
            )
            .set(
                "queue",
                JsonValue::obj()
                    .set("capacity", self.queue_cap)
                    .set("max_depth", s.max_depth)
                    .set("rejections", s.rejected),
            )
            .set(
                "faults",
                JsonValue::obj()
                    .set("injected", s.injected_faults)
                    .set("jobs_recovered", s.jobs_recovered),
            )
            .set(
                "robustness",
                JsonValue::obj()
                    .set("gate_failures", s.gate_failures)
                    .set("quarantine_rejected", s.quarantine_rejected)
                    .set("quarantined_patterns", s.quarantined_patterns),
            )
            .set("fleet", {
                let dead: Vec<JsonValue> = self
                    .fleet
                    .iter()
                    .filter(|d| d.dead)
                    .map(|d| JsonValue::from(d.device as u64))
                    .collect();
                let per_device: Vec<JsonValue> = self
                    .fleet
                    .iter()
                    .map(|d| {
                        JsonValue::obj()
                            .set("device", d.device)
                            .set("jobs", d.jobs)
                            .set("queued", d.queued)
                            .set("hot_jobs", d.hot_jobs)
                            .set("hot_hits", d.hot_hits)
                            .set("hot_hit_rate", d.hot_hit_rate())
                            .set("plan_bytes", d.plan_bytes)
                            .set("dead", d.dead)
                    })
                    .collect();
                JsonValue::obj()
                    .set("devices", self.fleet.len())
                    .set("degraded", self.fleet.iter().any(|d| d.dead))
                    .set("dead", dead)
                    .set("per_device", per_device)
            });
        if let Some(metrics) = &self.metrics {
            doc = doc.set("metrics", metrics.clone());
        }
        if let Some(tenants) = &self.tenants {
            doc = doc.set("tenants", tenants.clone());
        }
        if let Some(slo) = &self.slo_eval {
            doc = doc.set("slo", slo.to_json());
        }
        if let Some(drift) = &self.drift_table {
            doc = doc.set("drift", drift.to_json());
        }
        doc
    }

    /// One-paragraph human summary (plus SLO and drift lines when the
    /// service ran with observability on).
    pub fn summary(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "jobs: {} completed ({} cold / {} warm / {} host / {} disk / {} cached), \
             {} failed, {} rejected, {} shed, {} cancelled, {} past deadline | \
             hot hit rate {:.1}% ({}/{}) | cache: {} patterns, {}/{} bytes, \
             {} evictions | sim p50 {:.0} ns p95 {:.0} ns | \
             faults injected {} (recovered {} jobs) | \
             gate failures {} ({} patterns quarantined, {} fast-rejected)",
            s.completed,
            s.cold,
            s.warm,
            s.warm_host,
            s.warm_disk,
            s.cached_solve,
            s.failed,
            s.rejected,
            s.load_shed,
            s.cancelled,
            s.deadline_dropped,
            s.hot_hit_rate() * 100.0,
            s.hot_hits,
            s.hot_jobs,
            self.cache_entries,
            self.cache_used_bytes,
            self.cache_budget_bytes,
            self.cache.evictions,
            percentile(&s.sim_ns, 50.0),
            percentile(&s.sim_ns, 95.0),
            s.injected_faults,
            s.jobs_recovered,
            s.gate_failures,
            s.quarantined_patterns,
            s.quarantine_rejected,
        );
        if self.disk_enabled {
            out.push_str(&format!(
                "\ndisk tier: {} | {} writes ({} failed), {} hits, {} rejects, \
                 {} rewarmed | host tier: {} entries, {}/{} bytes, {} hits",
                if self.disk_down {
                    "DOWN (degraded)"
                } else {
                    "up"
                },
                self.cache.disk_writes,
                self.cache.disk_write_failures,
                self.cache.disk_hits,
                self.cache.disk_rejects,
                self.cache.rewarmed,
                self.host_entries,
                self.host_used_bytes,
                self.host_budget_bytes,
                self.cache.host_hits,
            ));
        }
        if self.fleet.len() > 1 {
            let per: Vec<String> = self
                .fleet
                .iter()
                .map(|d| {
                    format!(
                        "d{}{}: {} jobs, hot hit rate {:.1}% ({}/{})",
                        d.device,
                        if d.dead { " DEAD" } else { "" },
                        d.jobs,
                        d.hot_hit_rate() * 100.0,
                        d.hot_hits,
                        d.hot_jobs,
                    )
                })
                .collect();
            out.push_str(&format!(
                "\nfleet: {} devices{} | {}",
                self.fleet.len(),
                if self.fleet.iter().any(|d| d.dead) {
                    " (DEGRADED)"
                } else {
                    ""
                },
                per.join(" | "),
            ));
        }
        if let Some(slo) = &self.slo_eval {
            out.push('\n');
            out.push_str(&slo.summary());
        }
        if let Some(drift) = &self.drift_table {
            out.push('\n');
            out.push_str(drift.summary().trim_end());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn report_json_has_the_schema_sections() {
        let report = ServiceReport {
            stats: StatsSnapshot {
                submitted: 3,
                completed: 3,
                cold: 1,
                warm: 2,
                hot_jobs: 2,
                hot_hits: 2,
                sim_ns: vec![100.0, 200.0, 300.0],
                wall_ns: vec![1000.0, 2000.0, 3000.0],
                ..Default::default()
            },
            cache: CacheCounters::default(),
            cache_entries: 1,
            cache_used_bytes: 4096,
            cache_budget_bytes: 1 << 20,
            host_entries: 0,
            host_used_bytes: 0,
            host_budget_bytes: 1 << 20,
            disk_enabled: false,
            disk_down: false,
            queue_cap: 64,
            fleet: vec![DeviceLoadSnapshot::default()],
            metrics: None,
            tenants: None,
            slo_eval: None,
            drift_table: None,
        };
        let doc = report.to_json();
        assert_eq!(
            doc.get("service_schema_version")
                .and_then(JsonValue::as_u64),
            Some(SERVICE_SCHEMA_VERSION)
        );
        for section in [
            "jobs",
            "cache",
            "latency",
            "tiers",
            "queue",
            "faults",
            "robustness",
            "fleet",
        ] {
            assert!(doc.get(section).is_some(), "missing {section}");
        }
        // Observability sections are absent when captured without obs.
        for section in ["metrics", "tenants", "slo", "drift"] {
            assert!(doc.get(section).is_none(), "unexpected {section}");
        }
        let parsed = gplu_trace::json::parse(&doc.to_pretty()).expect("round-trips");
        assert_eq!(
            parsed
                .get("cache")
                .and_then(|c| c.get("hot_hit_rate"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert!(!report.summary().is_empty());
    }
}
