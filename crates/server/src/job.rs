//! Job model: what clients submit and what they get back.

use gplu_core::{GpluError, LuFactorization, LuOptions};
use gplu_sim::FaultPlan;
use gplu_sparse::{Csr, Val};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// What a job asks the service to do.
///
/// The kind is the *client's intent*; the service is free to serve any
/// kind from a cheaper tier when the cache allows it (a `Factorize` of an
/// already-cached pattern runs the warm path — the result is bit-identical
/// by construction, see `tests/service.rs`).
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Factorize the matrix (cold or cache-served).
    Factorize,
    /// Factorize expecting a cached pattern (circuit-transient traffic).
    Refactorize,
    /// Factorize (any tier) and then solve for the given right-hand
    /// sides with the cached batched triangular-solve plan.
    Solve {
        /// Right-hand sides, each of length `n`.
        rhs: Vec<Vec<Val>>,
    },
}

impl JobKind {
    /// Static label for spans and reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Factorize => "factorize",
            JobKind::Refactorize => "refactorize",
            JobKind::Solve { .. } => "solve",
        }
    }
}

/// One unit of work for the service.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The matrix to factorize (pattern + values).
    pub matrix: Csr,
    /// What to do with it.
    pub kind: JobKind,
    /// Pipeline options (ordering, engine, format, repair).
    pub opts: LuOptions,
    /// Fault plan injected into this job's simulated GPU — the per-job
    /// chaos hook; the pipeline's recovery ladder runs inside the worker.
    pub fault: Option<FaultPlan>,
    /// Wall-clock deadline in nanoseconds from submission: a job still
    /// queued past it is dropped with [`GpluError::DeadlineExceeded`].
    pub deadline_ns: Option<u64>,
    /// Marks hot-pattern traffic; the service's cache hit rate is
    /// measured over hot jobs (cold unique patterns *cannot* hit).
    pub hot: bool,
    /// Override the simulated device-memory capacity for this job.
    pub mem_override: Option<u64>,
    /// Tenant this job is attributed to: the service keys its latency
    /// histograms and SLO breakdowns per tenant.
    pub tenant: String,
    /// Marks this job sheddable: when the service is degraded (the
    /// persistent cache tier is down) *and* under queue pressure, jobs
    /// flagged best-effort are refused at admission with
    /// [`GpluError::LoadShed`] so protected traffic keeps its capacity.
    pub best_effort: bool,
}

impl JobSpec {
    /// A job with default options, no faults, no deadline.
    pub fn new(matrix: Csr, kind: JobKind) -> Self {
        JobSpec {
            matrix,
            kind,
            opts: LuOptions::default(),
            fault: None,
            deadline_ns: None,
            hot: false,
            mem_override: None,
            tenant: String::from("default"),
            best_effort: false,
        }
    }

    /// Marks this job as hot-pattern traffic.
    pub fn hot(mut self) -> Self {
        self.hot = true;
        self
    }

    /// Attributes this job to a tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Attaches a fault plan to this job's GPU.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets a wall-clock queueing deadline.
    pub fn with_deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = Some(ns);
        self
    }

    /// Marks this job sheddable under degraded-mode queue pressure.
    pub fn best_effort(mut self) -> Self {
        self.best_effort = true;
        self
    }
}

/// Which tier served the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// Full pipeline: preprocess + symbolic + levelize + numeric, plus
    /// plan construction for the cache.
    Cold,
    /// Device-tier pattern hit: value scatter + numeric kernels only.
    Warm,
    /// Pattern hit rescued from the host memory tier (the plan was
    /// demoted out of the device arena, or rewarmed at boot) and
    /// promoted back; numeric kernels still run.
    WarmHost,
    /// Pattern hit rescued from the persistent disk tier: the plan was
    /// deserialized, validated, and promoted; all symbolic work was
    /// still skipped.
    WarmDisk,
    /// Pattern *and* value hit: factors reused outright.
    CachedSolve,
}

impl ExecTier {
    /// Static label for spans and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ExecTier::Cold => "cold",
            ExecTier::Warm => "warm",
            ExecTier::WarmHost => "warm_host",
            ExecTier::WarmDisk => "warm_disk",
            ExecTier::CachedSolve => "cached_solve",
        }
    }
}

/// What a completed job returns.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Service-assigned job id (submission order).
    pub id: u64,
    /// Which tier served it.
    pub tier: ExecTier,
    /// Fleet device the job ran on (0 for a single-device service).
    pub device: usize,
    /// The factors (shared with the cache on warm/cached tiers).
    pub factorization: Arc<LuFactorization>,
    /// Solutions, for [`JobKind::Solve`] jobs.
    pub solutions: Option<Vec<Vec<Val>>>,
    /// Simulated time this job spent on its GPU (factorize + solve).
    pub sim_ns: f64,
    /// Wall-clock service latency (submit → completion).
    pub wall_ns: u64,
    /// Wall time spent queued before a worker picked the job up.
    pub queue_wait_ns: u64,
    /// Wall time inside the batched triangular solve (0 for non-solve
    /// jobs); `wall_ns - queue_wait_ns - solve_wall_ns` is execution.
    pub solve_wall_ns: u64,
    /// Faults injected into this job's GPU.
    pub injected_faults: u64,
    /// Corrective actions the recovery ladder took for this job.
    pub recovery_events: usize,
}

/// Client-side handle to a submitted job.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<JobResult, GpluError>>,
    pub(crate) cancelled: Arc<AtomicBool>,
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation. Best-effort: a job already running
    /// completes normally; a job still queued is dropped with
    /// [`GpluError::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Blocks until the job completes (or is dropped by the service).
    pub fn wait(self) -> Result<JobResult, GpluError> {
        // A dropped sender without a message means the service shut down
        // with the job still queued — surface that as a cancellation.
        self.rx.recv().unwrap_or(Err(GpluError::Cancelled))
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Result<JobResult, GpluError>> {
        self.rx.try_recv().ok()
    }
}

/// Internal queued form: the spec plus its completion channel.
pub(crate) struct QueuedJob {
    pub id: u64,
    pub spec: JobSpec,
    pub tx: mpsc::Sender<Result<JobResult, GpluError>>,
    pub cancelled: Arc<AtomicBool>,
    pub enqueued: std::time::Instant,
    /// Fleet device the job was placed on at admission (0 for a
    /// single-device service).
    pub device: usize,
}
