//! Fleet scheduling: cache-locality-aware placement of jobs onto the
//! service's simulated device fleet.
//!
//! With [`crate::ServiceConfig::devices`] > 1 the service models a small
//! fleet of accelerators behind one admission queue. Every accepted job
//! is *placed* on a device at submission:
//!
//! * **Locality first.** A pattern's first cold factorization homes it
//!   on the device that built its `RefactorPlan`; later jobs on the same
//!   pattern route back to that home, where the plan is arena-resident —
//!   a warm hit on any other device would have to re-ship the plan.
//! * **Least-loaded fallback.** Unknown patterns — and patterns whose
//!   home device has been marked dead — go to the live device with the
//!   shallowest logical queue (outstanding placed-but-unfinished jobs),
//!   which also re-homes the pattern there.
//!
//! Placement is accounting, not value computation: results are
//! bit-identical regardless of which device a job lands on (the same
//! functional pipeline runs either way), so the scheduler only shapes
//! latency, cache locality, and the per-device counters the service
//! report exposes.
//!
//! A dead device ([`FleetScheduler::mark_dead`]) drops out of placement
//! immediately; its homed patterns re-home onto survivors on their next
//! job (the service-level mirror of the pipeline's mid-phase reshard).
//! While any device is dead the fleet reports itself
//! [`FleetScheduler::degraded`], which the admission path folds into its
//! load-shedding predicate alongside a downed disk tier.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-device scheduling cell: the logical queue depth plus the
/// monotone counters the report summarizes.
#[derive(Debug, Default)]
struct DeviceCell {
    /// Jobs placed on this device and not yet finished (the logical
    /// per-device queue: waiting + executing).
    queued: AtomicU64,
    /// Jobs this device finished (any outcome).
    jobs: AtomicU64,
    /// Hot-pattern jobs this device finished.
    hot_jobs: AtomicU64,
    /// Hot jobs served warm or from cached factors on this device.
    hot_hits: AtomicU64,
    /// Plan bytes homed on this device by cold builds (cumulative; the
    /// service-level stand-in for arena occupancy).
    plan_bytes: AtomicU64,
    dead: AtomicBool,
}

/// Point-in-time view of one device's scheduling state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceLoadSnapshot {
    /// Device ordinal within the fleet.
    pub device: usize,
    /// Jobs placed but not yet finished.
    pub queued: u64,
    /// Jobs finished on this device.
    pub jobs: u64,
    /// Hot jobs finished on this device.
    pub hot_jobs: u64,
    /// Hot jobs served warm or cached on this device.
    pub hot_hits: u64,
    /// Cumulative plan bytes homed on this device.
    pub plan_bytes: u64,
    /// Whether the device is marked dead.
    pub dead: bool,
}

impl DeviceLoadSnapshot {
    /// Cache hit rate over this device's hot segment (1.0 when no hot
    /// jobs landed here) — same convention as
    /// [`crate::StatsSnapshot::hot_hit_rate`].
    pub fn hot_hit_rate(&self) -> f64 {
        if self.hot_jobs == 0 {
            1.0
        } else {
            self.hot_hits as f64 / self.hot_jobs as f64
        }
    }
}

/// The service's device-fleet scheduler. See the module docs for the
/// placement policy.
#[derive(Debug)]
pub struct FleetScheduler {
    cells: Vec<DeviceCell>,
    /// Pattern fingerprint → home device (where its plan was built).
    homes: Mutex<HashMap<u64, usize>>,
}

impl FleetScheduler {
    /// A fleet of `devices` devices (clamped to at least 1).
    pub fn new(devices: usize) -> FleetScheduler {
        FleetScheduler {
            cells: (0..devices.max(1)).map(|_| DeviceCell::default()).collect(),
            homes: Mutex::new(HashMap::new()),
        }
    }

    /// Fleet size.
    pub fn devices(&self) -> usize {
        self.cells.len()
    }

    /// Devices not marked dead.
    pub fn n_alive(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.dead.load(Ordering::Relaxed))
            .count()
    }

    /// True while any device is dead — the fleet half of the service's
    /// degraded-mode admission predicate.
    pub fn degraded(&self) -> bool {
        self.cells.iter().any(|c| c.dead.load(Ordering::Relaxed))
    }

    /// Marks a device dead; its homed patterns re-home onto survivors
    /// on their next placement. Returns false for an out-of-range
    /// ordinal or when this is the last live device (the fleet refuses
    /// to kill its final executor — jobs must keep landing somewhere).
    pub fn mark_dead(&self, device: usize) -> bool {
        let Some(cell) = self.cells.get(device) else {
            return false;
        };
        if !cell.dead.load(Ordering::Relaxed) && self.n_alive() <= 1 {
            return false;
        }
        cell.dead.store(true, Ordering::Relaxed);
        true
    }

    /// Whether a device is marked dead (out-of-range reads as dead).
    pub fn is_dead(&self, device: usize) -> bool {
        self.cells
            .get(device)
            .is_none_or(|c| c.dead.load(Ordering::Relaxed))
    }

    /// The device a pattern is currently homed on, if any.
    pub fn home_of(&self, pattern_fp: u64) -> Option<usize> {
        self.homes
            .lock()
            .expect("fleet homes lock")
            .get(&pattern_fp)
            .copied()
    }

    /// Places a job for `pattern_fp`: its live home device when it has
    /// one, otherwise the live device with the shallowest logical queue
    /// (which becomes the pattern's new home). Increments the chosen
    /// device's queue; pair with [`FleetScheduler::finish`].
    pub fn place(&self, pattern_fp: u64) -> usize {
        let mut homes = self.homes.lock().expect("fleet homes lock");
        let device = match homes.get(&pattern_fp) {
            Some(&d) if !self.is_dead(d) => d,
            _ => {
                let d = self.least_loaded();
                homes.insert(pattern_fp, d);
                d
            }
        };
        drop(homes);
        self.cells[device].queued.fetch_add(1, Ordering::Relaxed);
        device
    }

    /// The live device with the fewest outstanding jobs (lowest ordinal
    /// on ties; ignores the dead flag only if every device is dead —
    /// placement must always land somewhere).
    fn least_loaded(&self) -> usize {
        let pick = |require_alive: bool| {
            self.cells
                .iter()
                .enumerate()
                .filter(|(_, c)| !require_alive || !c.dead.load(Ordering::Relaxed))
                .min_by_key(|(d, c)| (c.queued.load(Ordering::Relaxed), *d))
                .map(|(d, _)| d)
        };
        pick(true).or_else(|| pick(false)).unwrap_or(0)
    }

    /// A job placed on `device` finished (any outcome): pops it off the
    /// logical queue and folds its hot/hit contribution in.
    pub fn finish(&self, device: usize, hot: bool, hit: bool) {
        let Some(cell) = self.cells.get(device) else {
            return;
        };
        let q = &cell.queued;
        // Saturating pop: a cancelled job can race its own placement
        // accounting during shutdown.
        let _ = q.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        cell.jobs.fetch_add(1, Ordering::Relaxed);
        if hot {
            cell.hot_jobs.fetch_add(1, Ordering::Relaxed);
            if hit {
                cell.hot_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Charges a cold build's plan bytes to the device it homed on.
    pub fn charge_plan(&self, device: usize, bytes: u64) {
        if let Some(cell) = self.cells.get(device) {
            cell.plan_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Per-device snapshot, in device order.
    pub fn snapshot(&self) -> Vec<DeviceLoadSnapshot> {
        self.cells
            .iter()
            .enumerate()
            .map(|(device, c)| DeviceLoadSnapshot {
                device,
                queued: c.queued.load(Ordering::Relaxed),
                jobs: c.jobs.load(Ordering::Relaxed),
                hot_jobs: c.hot_jobs.load(Ordering::Relaxed),
                hot_hits: c.hot_hits.load(Ordering::Relaxed),
                plan_bytes: c.plan_bytes.load(Ordering::Relaxed),
                dead: c.dead.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_locality_first_then_least_loaded() {
        let fleet = FleetScheduler::new(4);
        // Unknown patterns spread across the shallowest queues.
        let d0 = fleet.place(100);
        let d1 = fleet.place(200);
        assert_ne!(
            d0, d1,
            "two fresh patterns must not stack on one idle fleet"
        );
        // A known pattern routes home even when its device is busiest.
        for _ in 0..5 {
            assert_eq!(fleet.place(100), d0);
        }
        assert_eq!(fleet.home_of(100), Some(d0));
        let snap = fleet.snapshot();
        assert_eq!(snap[d0].queued, 6);
    }

    #[test]
    fn dead_home_reshards_onto_survivors_and_degrades_the_fleet() {
        let fleet = FleetScheduler::new(3);
        let home = fleet.place(7);
        fleet.finish(home, true, true);
        assert!(!fleet.degraded());
        assert!(fleet.mark_dead(home));
        assert!(fleet.degraded());
        assert_eq!(fleet.n_alive(), 2);
        let new_home = fleet.place(7);
        assert_ne!(new_home, home, "dead home must not receive work");
        assert_eq!(fleet.home_of(7), Some(new_home), "pattern re-homes");
        // The last live device cannot be killed.
        let survivors: Vec<usize> = (0..3).filter(|&d| !fleet.is_dead(d)).collect();
        assert!(fleet.mark_dead(survivors[0]));
        assert!(!fleet.mark_dead(survivors[1]), "last device must survive");
        assert_eq!(fleet.n_alive(), 1);
    }

    #[test]
    fn finish_accumulates_per_device_hit_rates() {
        let fleet = FleetScheduler::new(2);
        let d = fleet.place(1);
        fleet.finish(d, true, false); // cold hot job
        let d2 = fleet.place(1);
        assert_eq!(d2, d);
        fleet.finish(d, true, true); // warm hot job
        fleet.charge_plan(d, 4096);
        let snap = &fleet.snapshot()[d];
        assert_eq!((snap.hot_jobs, snap.hot_hits), (2, 1));
        assert_eq!(snap.hot_hit_rate(), 0.5);
        assert_eq!(snap.plan_bytes, 4096);
        assert_eq!(snap.queued, 0, "finish pops the logical queue");
        let other = &fleet.snapshot()[1 - d];
        assert_eq!(other.hot_hit_rate(), 1.0, "vacuous without hot jobs");
    }
}
