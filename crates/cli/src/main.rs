//! `gplu` — command-line driver for the end-to-end GPU sparse LU pipeline.
//!
//! ```text
//! gplu info <matrix.mtx>                         inspect a Matrix Market file
//! gplu factorize <matrix.mtx> [options]          run the pipeline, print the phase report
//! gplu solve <matrix.mtx> [options]              factorize + solve (rhs = A·1), verify
//! gplu gen <circuit|mesh|planar> <n> <density> <out.mtx> [seed]
//! ```
//!
//! Options (factorize/solve):
//! `--ordering amd|rcm|natural`, `--engine ooc|dynamic|um|um-prefetch`,
//! `--format auto|dense|sparse|merge`, `--mem <MiB>` (device memory;
//! default: the symbolic out-of-core profile for the input), `--gpu-solve`
//! (solve on the simulated GPU instead of the host), `--trace-out <path>`
//! (Chrome trace-event JSON — open in Perfetto), `--report-json <path>`
//! (versioned machine-readable run report), `--metrics` (span histograms
//! on stdout).

use gplu_cli::{run, CliError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}\n\n{}", gplu_cli::USAGE);
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
