//! Implementation of the `gplu` command-line driver (library-shaped so the
//! command logic is unit-testable without spawning processes).

use gplu_core::{
    CheckpointOptions, GpluError, LuFactorization, LuOptions, NumericFormat, PivotPolicy,
    RunReport, SymbolicEngine, DEFAULT_PIVOT_TAU,
};
use gplu_server::{
    generate_workload, JobHandle, ServiceConfig, ServiceReport, SloSpec, SolverService,
    WorkloadParams,
};
use gplu_sim::{CostModel, DeviceFleet, FaultPlan, Gpu, GpuConfig};
use gplu_sparse::convert::coo_to_csr;
use gplu_sparse::gen::hard::HardKind;
use gplu_sparse::gen::{circuit, mesh, planar};
use gplu_sparse::io::{read_matrix_market_file, write_matrix_market_file};
use gplu_sparse::ordering::OrderingKind;
use gplu_sparse::{Coo, Csr, SparseError};
use gplu_trace::{chrome_trace, metrics_text, Recorder, NOOP};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::Arc;

/// Usage text shared by `--help` and usage errors.
pub const USAGE: &str = "\
gplu — end-to-end sparse LU factorization on a simulated GPU

commands:
  info <matrix.mtx>
  factorize <matrix.mtx> [options]
  solve <matrix.mtx> [options] [--gpu-solve]
  gen <family> <n> <nnz_per_row> <out.mtx> [seed]
      families: circuit, mesh, planar (dominant); near-singular, graded,
      zero-diag, sign-alternating (adversarial; nnz_per_row ignored)
  serve --stress [serve options]

options:
  --ordering amd|rcm|natural    fill-reducing ordering (default amd)
  --engine ooc|dynamic|um|um-prefetch
                                symbolic engine (default dynamic)
  --format auto|dense|sparse|merge|blocked
                                numeric format (default auto: dense until the
                                paper's switch criterion fires, then merge-join
                                CSC — or supernode-blocked CSC when the fill
                                density crosses the BLAS-3 crossover; 'sparse'
                                forces binary-search CSC, 'blocked' forces the
                                supernode-blocked kernel)
  --block-threshold <sim>       minimum adjacent-column pattern similarity
                                (Jaccard, 0..1) for the supernode blocking
                                pass to chain two columns (default 0.6; used
                                by --format blocked and the auto crossover)
  --mem <MiB>                   device memory (default: out-of-core profile)
  --devices <N>                 shard the heavy phases across a fleet of N
                                simulated devices (default 1). Results are
                                bit-identical to a single device; only the
                                simulated makespan changes. Fault plans may
                                target one device with a dev=K: prefix.
                                Incompatible with --checkpoint-dir (fleet
                                runs are cold-run only)
  --pivot none|static|threshold pivoting policy (default none): 'static'
                                perturbs tiny pivots up to a floor at
                                division time, 'threshold' runs the host
                                discovery pre-pass and swaps rows whose
                                pivot falls below tau times the column max
  --pivot-tau <F>               threshold-pivoting relative tolerance in
                                0..1 (default 0.1; implies --pivot
                                threshold when that flag is unset)
  --static-floor <F>            static-perturbation pivot floor (default
                                1e-8; requires --pivot static)
  --gate-threshold <F>          residual acceptance gate: reject factors
                                whose relative residual exceeds F
                                (default 1e-6)
  --no-gate                     skip the residual gate entirely (accept
                                whatever the numeric phase produced)
  --escalate                    on gate failure, retry under progressively
                                stronger pivoting (threshold -> partial ->
                                static floor) before rejecting
  --repair-singular             patch pivots that cancel to zero with the
                                repair value and retry the numeric phase once
  --fault-plan <spec>           inject deterministic device faults; spec is a
                                comma list of oom:alloc=N[:persistent],
                                squeeze:alloc=N:KEEP%, badlaunch:KERNEL=N
                                [:persistent], crash:at=N (kill the process at
                                its Nth crash point — checkpoint write
                                boundaries), or seed:S (random plan).
                                Also read from GPLU_FAULT_PLAN when unset.
  --checkpoint-dir <dir>        cut crash-consistent snapshots into <dir>: one
                                at every phase boundary plus periodic partial
                                snapshots inside the symbolic/numeric phases
  --checkpoint-every <N>        partial-snapshot cadence in completed symbolic
                                iterations / numeric levels (default 8;
                                requires --checkpoint-dir, must be >= 1)
  --resume                      resume from the latest valid snapshot in
                                --checkpoint-dir (which must belong to the
                                same matrix) instead of starting over
  --trace-out <path>            write a Chrome trace-event JSON file of the
                                run (open in Perfetto / chrome://tracing)
  --report-json <path>          write the versioned machine-readable run
                                report (phase timings, per-level records,
                                GPU counters, recovery log)
  --metrics                     print span histograms and counters to stdout

serve options (the solver service is in-process; `--stress` replays a
seeded synthetic workload against it and reports what happened):
  --jobs <N>                    workload size (default 500)
  --workers <N>                 worker threads (default 4)
  --seed <S>                    workload seed; the whole job mix is a pure
                                function of it (default 1)
  --queue-cap <N>               bounded admission-queue capacity; overflow
                                is typed backpressure (default 64)
  --cache-budget <MiB>          pattern-keyed factor-cache device-tier
                                budget (default 64)
  --host-cache-budget <MiB>     host memory tier: plans evicted from the
                                device tier demote here instead of
                                dropping (default 64; 0 disables)
  --cache-dir <dir>             persistent disk cache tier: newly built
                                plans are persisted write-behind into
                                <dir> (crash-consistent, checksummed)
                                and misses consult it before going cold
  --rewarm                      repopulate the host tier from --cache-dir
                                before accepting jobs (warm restart;
                                previously cached patterns skip all
                                symbolic work)
  --disk-fault-plan <spec>      inject deterministic disk-tier faults:
                                comma list of diskfault:read=N
                                [:persistent], diskfault:write=N
                                [:persistent] (degraded-mode chaos)
  --hot-patterns <N>            distinct hot patterns in the mix (default 3)
  --hot-n <N> / --cold-n <N>    matrix dimensions of the hot / cold
                                segments (defaults 300 / 200)
  --fault-every <N>             give every Nth job a seeded fault plan
                                (default 0 = no chaos)
  --fault-plan <spec>           use this plan (same grammar as factorize)
                                for the faulted jobs instead of seeded
                                ones; implies --fault-every 7 when unset
  --hard-fraction <F>           fraction of jobs drawn from the adversarial
                                hard corpus (ill-conditioned patterns
                                resubmitted with drifting values; 0..1,
                                default 0 = none)
  --quarantine-strikes <N>      numeric rejections on one pattern before
                                the service fast-rejects it (default 2,
                                0 disables quarantine)
  --devices <N>                 schedule jobs across a fleet of N simulated
                                devices (default 1): patterns route back to
                                the device holding their cached plan, the
                                rest go least-loaded, and the report gains
                                per-device hit rates
  --format auto|dense|sparse|merge|blocked
                                numeric format forced onto every generated
                                job (default auto)
  --block-threshold <sim>       blocking-pass similarity threshold applied
                                to every generated job (0..1, default 0.6)
  --service-report <path>       write the versioned service-report JSON
                                (validated by telemetry_check --service)
  --trace-out <path>            write the wall-clock Chrome trace of the
                                service run (queue depth, per-job spans)
  --min-hot-hit-rate <F>        exit nonzero unless the hot-segment cache
                                hit rate reaches F (0..1)
  --metrics-out <path>          write the live metrics-registry text
                                exposition (per-tenant/per-tier latency
                                histograms, gauges, counters)
  --slo <spec>                  evaluate the sliding-window SLO and exit
                                nonzero on violation; spec is key=value
                                pairs: sim_p50_ns / sim_p95_ns /
                                sim_p99_ns / wall_p95_ns ceilings,
                                hit_rate floor, window size — e.g.
                                --slo sim_p95_ns=2.5e9,hit_rate=0.8
  --tenants <N>                 tenants the workload spreads jobs across
                                (default 4)
";

/// CLI error type.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments (exit code 2, usage printed).
    Usage(String),
    /// Matrix/IO failure.
    Sparse(SparseError),
    /// Pipeline failure.
    Pipeline(GpluError),
    /// Output failure.
    Io(std::io::Error),
    /// A run-level acceptance check failed (e.g. `--min-hot-hit-rate`).
    Check(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Sparse(e) => write!(f, "{e}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Check(m) => write!(f, "check failed: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SparseError> for CliError {
    fn from(e: SparseError) -> Self {
        CliError::Sparse(e)
    }
}
impl From<GpluError> for CliError {
    fn from(e: GpluError) -> Self {
        CliError::Pipeline(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parsed factorize/solve options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Pipeline options assembled from the flags.
    pub lu: LuOptions,
    /// Device memory override (bytes).
    pub mem: Option<u64>,
    /// Solve on the simulated GPU.
    pub gpu_solve: bool,
    /// Deterministic fault-injection plan (`--fault-plan` or
    /// `GPLU_FAULT_PLAN`).
    pub fault_plan: Option<FaultPlan>,
    /// Write a Chrome trace-event file here (`--trace-out`).
    pub trace_out: Option<String>,
    /// Write the machine-readable run report here (`--report-json`).
    pub report_json: Option<String>,
    /// Print span histograms and counters (`--metrics`).
    pub metrics: bool,
    /// Crash-consistent checkpointing (`--checkpoint-dir`,
    /// `--checkpoint-every`, `--resume`), validated as a unit.
    pub checkpoint: Option<CheckpointOptions>,
    /// Fleet size (`--devices`); 1 runs the classic single-device path.
    pub devices: usize,
    /// Per-device fault plans for a fleet run, expanded from the
    /// `dev=K:`-prefixed `--fault-plan` grammar (only with `--devices`
    /// above 1).
    pub fleet_fault_plans: Option<Vec<FaultPlan>>,
}

impl RunOptions {
    /// True when any telemetry output was requested (the pipeline then
    /// runs with a live recorder instead of the no-op sink).
    pub fn wants_telemetry(&self) -> bool {
        self.trace_out.is_some() || self.report_json.is_some() || self.metrics
    }
}

fn parse_block_threshold(v: String) -> Result<f64, CliError> {
    let sim: f64 = v
        .parse()
        .map_err(|_| CliError::Usage("--block-threshold takes a number in 0..1".into()))?;
    if !(0.0..=1.0).contains(&sim) {
        return Err(CliError::Usage(
            "--block-threshold takes a number in 0..1".into(),
        ));
    }
    Ok(sim)
}

/// Parses the option flags shared by `factorize` and `solve`.
pub fn parse_options(args: &[String]) -> Result<RunOptions, CliError> {
    let mut opts = RunOptions {
        lu: LuOptions {
            symbolic: SymbolicEngine::OocDynamic,
            ..Default::default()
        },
        mem: None,
        gpu_solve: false,
        fault_plan: None,
        trace_out: None,
        report_json: None,
        metrics: false,
        checkpoint: None,
        devices: 1,
        fleet_fault_plans: None,
    };
    let mut fault_spec: Option<String> = None;
    let mut ckpt_dir: Option<String> = None;
    let mut ckpt_every: Option<usize> = None;
    let mut resume = false;
    let mut pivot_kind: Option<String> = None;
    let mut pivot_tau: Option<f64> = None;
    let mut static_floor: Option<f64> = None;
    let mut no_gate = false;
    let mut escalate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--ordering" => {
                opts.lu.preprocess.ordering = match value("--ordering")?.as_str() {
                    "amd" => OrderingKind::MinDegree,
                    "rcm" => OrderingKind::Rcm,
                    "natural" => OrderingKind::Natural,
                    other => return Err(CliError::Usage(format!("unknown ordering '{other}'"))),
                };
            }
            "--engine" => {
                opts.lu.symbolic = match value("--engine")?.as_str() {
                    "ooc" => SymbolicEngine::Ooc,
                    "dynamic" => SymbolicEngine::OocDynamic,
                    "um" => SymbolicEngine::UmNoPrefetch,
                    "um-prefetch" => SymbolicEngine::UmPrefetch,
                    other => return Err(CliError::Usage(format!("unknown engine '{other}'"))),
                };
            }
            "--format" => {
                opts.lu.format = match value("--format")?.as_str() {
                    "auto" => NumericFormat::Auto,
                    "dense" => NumericFormat::Dense,
                    "sparse" => NumericFormat::Sparse,
                    "merge" => NumericFormat::SparseMerge,
                    "blocked" => NumericFormat::SparseBlocked,
                    other => return Err(CliError::Usage(format!("unknown format '{other}'"))),
                };
            }
            "--block-threshold" => {
                opts.lu.block_threshold = parse_block_threshold(value("--block-threshold")?)?;
            }
            "--mem" => {
                let mib: u64 = value("--mem")?
                    .parse()
                    .map_err(|_| CliError::Usage("--mem takes MiB as an integer".into()))?;
                opts.mem = Some(mib << 20);
            }
            "--gpu-solve" => opts.gpu_solve = true,
            "--devices" => {
                let n: usize = value("--devices")?
                    .parse()
                    .map_err(|_| CliError::Usage("--devices takes a positive integer".into()))?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--devices must be at least 1 (who would run the kernels?)".into(),
                    ));
                }
                opts.devices = n;
            }
            "--pivot" => {
                let kind = value("--pivot")?;
                match kind.as_str() {
                    "none" | "static" | "threshold" => pivot_kind = Some(kind),
                    other => {
                        return Err(CliError::Usage(format!("unknown pivot policy '{other}'")))
                    }
                }
            }
            "--pivot-tau" => {
                let tau: f64 = value("--pivot-tau")?
                    .parse()
                    .map_err(|_| CliError::Usage("--pivot-tau takes a number in 0..1".into()))?;
                if !(tau > 0.0 && tau <= 1.0) {
                    return Err(CliError::Usage("--pivot-tau takes a number in 0..1".into()));
                }
                pivot_tau = Some(tau);
            }
            "--static-floor" => {
                let floor: f64 = value("--static-floor")?.parse().map_err(|_| {
                    CliError::Usage("--static-floor takes a positive number".into())
                })?;
                if !(floor > 0.0 && floor.is_finite()) {
                    return Err(CliError::Usage(
                        "--static-floor takes a positive number".into(),
                    ));
                }
                static_floor = Some(floor);
            }
            "--gate-threshold" => {
                let t: f64 = value("--gate-threshold")?.parse().map_err(|_| {
                    CliError::Usage("--gate-threshold takes a positive number".into())
                })?;
                if !(t > 0.0 && t.is_finite()) {
                    return Err(CliError::Usage(
                        "--gate-threshold takes a positive number".into(),
                    ));
                }
                opts.lu.gate.threshold = t;
            }
            "--no-gate" => no_gate = true,
            "--escalate" => escalate = true,
            "--checkpoint-dir" => ckpt_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                let n: usize = value("--checkpoint-every")?.parse().map_err(|_| {
                    CliError::Usage("--checkpoint-every takes a positive integer".into())
                })?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--checkpoint-every must be at least 1 (0 would never cut a snapshot)"
                            .into(),
                    ));
                }
                ckpt_every = Some(n);
            }
            "--resume" => resume = true,
            "--repair-singular" => opts.lu.preprocess.repair_singular = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--report-json" => opts.report_json = Some(value("--report-json")?),
            "--metrics" => opts.metrics = true,
            // Parsed after the loop: the fleet grammar (`dev=K:` device
            // selectors) is only legal once `--devices` is known, and the
            // flags may come in either order.
            "--fault-plan" => fault_spec = Some(value("--fault-plan")?),
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    // Pivoting flags are validated as a unit so conflicting combinations
    // are typed usage errors, never silently dropped knobs.
    opts.lu.pivot = match pivot_kind.as_deref() {
        Some("none") => {
            if pivot_tau.is_some() || static_floor.is_some() {
                return Err(CliError::Usage(
                    "--pivot none conflicts with --pivot-tau / --static-floor".into(),
                ));
            }
            PivotPolicy::NoPivot
        }
        Some("static") => {
            if pivot_tau.is_some() {
                return Err(CliError::Usage(
                    "--pivot-tau belongs to --pivot threshold, not static".into(),
                ));
            }
            PivotPolicy::Static {
                threshold: static_floor.unwrap_or(1e-8),
            }
        }
        Some("threshold") => {
            if static_floor.is_some() {
                return Err(CliError::Usage(
                    "--static-floor belongs to --pivot static, not threshold".into(),
                ));
            }
            PivotPolicy::Threshold {
                tau: pivot_tau.unwrap_or(DEFAULT_PIVOT_TAU),
            }
        }
        Some(_) => unreachable!("parser rejected unknown policies"),
        // Bare --pivot-tau implies threshold pivoting; a bare
        // --static-floor has nothing to attach to.
        None => match (pivot_tau, static_floor) {
            (Some(tau), None) => PivotPolicy::Threshold { tau },
            (None, Some(_)) => {
                return Err(CliError::Usage(
                    "--static-floor requires --pivot static".into(),
                ));
            }
            (Some(_), Some(_)) => {
                return Err(CliError::Usage(
                    "--pivot-tau conflicts with --static-floor (pick one policy)".into(),
                ));
            }
            (None, None) => opts.lu.pivot,
        },
    };
    if no_gate && escalate {
        return Err(CliError::Usage(
            "--escalate needs the residual gate; drop --no-gate".into(),
        ));
    }
    opts.lu.gate.enabled = !no_gate;
    opts.lu.gate.escalate = escalate;
    // Fault plans resolve once the fleet size is known: a fleet run
    // expands the `dev=K:` grammar into per-device plans, a single-device
    // run keeps the classic single-plan parse (where `dev=` is an error).
    match fault_spec {
        Some(spec) if opts.devices > 1 => {
            opts.fleet_fault_plans = Some(
                FaultPlan::parse_fleet(&spec, opts.devices)
                    .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?,
            );
        }
        Some(spec) => {
            opts.fault_plan = Some(
                FaultPlan::parse(&spec)
                    .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?,
            );
        }
        None if opts.devices > 1 => {
            if let Ok(spec) = std::env::var(gplu_sim::FAULT_PLAN_ENV) {
                if !spec.trim().is_empty() {
                    opts.fleet_fault_plans =
                        Some(FaultPlan::parse_fleet(&spec, opts.devices).map_err(|e| {
                            CliError::Usage(format!("{}: {e}", gplu_sim::FAULT_PLAN_ENV))
                        })?);
                }
            }
        }
        None => {
            opts.fault_plan = FaultPlan::from_env()
                .map_err(|e| CliError::Usage(format!("{}: {e}", gplu_sim::FAULT_PLAN_ENV)))?;
        }
    }
    opts.checkpoint = match ckpt_dir {
        Some(dir) => {
            let mut ckpt = CheckpointOptions::new(dir).resume(resume);
            if let Some(n) = ckpt_every {
                ckpt = ckpt.every(n);
            }
            Some(ckpt)
        }
        None if resume => {
            return Err(CliError::Usage(
                "--resume requires --checkpoint-dir (where should the snapshot come from?)".into(),
            ));
        }
        None if ckpt_every.is_some() => {
            return Err(CliError::Usage(
                "--checkpoint-every requires --checkpoint-dir".into(),
            ));
        }
        None => None,
    };
    if opts.devices > 1 && opts.checkpoint.is_some() {
        return Err(CliError::Usage(
            "--devices above 1 is incompatible with --checkpoint-dir: fleet runs \
             are cold-run only (no checkpoint/resume yet)"
                .into(),
        ));
    }
    Ok(opts)
}

/// Parsed `serve` options: the workload shape, the service knobs, and the
/// stress driver's output/check settings.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `--stress` given (required; bare `serve` is a usage error because
    /// the service is in-process — there is no listener to run).
    pub stress: bool,
    /// Synthetic workload shape.
    pub workload: WorkloadParams,
    /// Worker pool / queue / cache knobs.
    pub service: ServiceConfig,
    /// Replaces the seeded per-job fault plans with this one.
    pub fault_plan: Option<FaultPlan>,
    /// Numeric format forced onto every generated job (`--format`).
    pub format: Option<NumericFormat>,
    /// Blocking-pass similarity threshold applied to every generated job
    /// (`--block-threshold`).
    pub block_threshold: Option<f64>,
    /// Write the service-report JSON here.
    pub service_report: Option<String>,
    /// Write the wall-clock Chrome trace here.
    pub trace_out: Option<String>,
    /// Fail the run when the hot-segment hit rate lands below this.
    pub min_hot_hit_rate: Option<f64>,
    /// Write the metrics-registry text exposition here.
    pub metrics_out: Option<String>,
    /// Evaluate this SLO spec against the sliding window; violations
    /// fail the run.
    pub slo: Option<SloSpec>,
}

/// Parses the flags of the `serve` subcommand.
pub fn parse_serve_options(args: &[String]) -> Result<ServeOptions, CliError> {
    let mut o = ServeOptions {
        stress: false,
        workload: WorkloadParams::default(),
        service: ServiceConfig::default(),
        fault_plan: None,
        format: None,
        block_threshold: None,
        service_report: None,
        trace_out: None,
        min_hot_hit_rate: None,
        metrics_out: None,
        slo: None,
    };
    let mut fault_every_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        fn int(flag: &str, v: String) -> Result<usize, CliError> {
            v.parse()
                .map_err(|_| CliError::Usage(format!("{flag} takes an integer")))
        }
        match a.as_str() {
            "--stress" => o.stress = true,
            "--jobs" => o.workload.jobs = int("--jobs", value("--jobs")?)?,
            "--workers" => o.service.workers = int("--workers", value("--workers")?)?.max(1),
            "--seed" => o.workload.seed = int("--seed", value("--seed")?)? as u64,
            "--queue-cap" => {
                o.service.queue_cap = int("--queue-cap", value("--queue-cap")?)?.max(1);
            }
            "--cache-budget" => {
                o.service.cache_budget_bytes =
                    (int("--cache-budget", value("--cache-budget")?)? as u64) << 20;
            }
            "--host-cache-budget" => {
                o.service.host_cache_budget_bytes =
                    (int("--host-cache-budget", value("--host-cache-budget")?)? as u64) << 20;
            }
            "--cache-dir" => {
                o.service.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")?));
            }
            "--rewarm" => o.service.rewarm = true,
            "--disk-fault-plan" => {
                let spec = value("--disk-fault-plan")?;
                o.service.disk_fault_plan = Some(
                    FaultPlan::parse(&spec)
                        .map_err(|e| CliError::Usage(format!("--disk-fault-plan: {e}")))?,
                );
            }
            "--hot-patterns" => {
                o.workload.hot_patterns = int("--hot-patterns", value("--hot-patterns")?)?.max(1);
            }
            "--hot-n" => o.workload.hot_n = int("--hot-n", value("--hot-n")?)?,
            "--cold-n" => o.workload.cold_n = int("--cold-n", value("--cold-n")?)?,
            "--fault-every" => {
                o.workload.fault_every = int("--fault-every", value("--fault-every")?)?;
                fault_every_set = true;
            }
            "--hard-fraction" => {
                let f: f64 = value("--hard-fraction")?.parse().map_err(|_| {
                    CliError::Usage("--hard-fraction takes a number in 0..1".into())
                })?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(CliError::Usage(
                        "--hard-fraction takes a number in 0..1".into(),
                    ));
                }
                o.workload.hard_fraction = f;
            }
            "--quarantine-strikes" => {
                o.service.quarantine_strikes =
                    int("--quarantine-strikes", value("--quarantine-strikes")?)? as u32;
            }
            "--devices" => {
                o.service.devices = int("--devices", value("--devices")?)?.max(1);
            }
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                o.fault_plan = Some(
                    FaultPlan::parse(&spec)
                        .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?,
                );
            }
            "--format" => {
                o.format = Some(match value("--format")?.as_str() {
                    "auto" => NumericFormat::Auto,
                    "dense" => NumericFormat::Dense,
                    "sparse" => NumericFormat::Sparse,
                    "merge" => NumericFormat::SparseMerge,
                    "blocked" => NumericFormat::SparseBlocked,
                    other => return Err(CliError::Usage(format!("unknown format '{other}'"))),
                });
            }
            "--block-threshold" => {
                o.block_threshold = Some(parse_block_threshold(value("--block-threshold")?)?);
            }
            "--service-report" => o.service_report = Some(value("--service-report")?),
            "--trace-out" => o.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => o.metrics_out = Some(value("--metrics-out")?),
            "--slo" => {
                o.slo = Some(SloSpec::parse(&value("--slo")?).map_err(CliError::Usage)?);
            }
            "--tenants" => o.workload.tenants = int("--tenants", value("--tenants")?)?.max(1),
            "--min-hot-hit-rate" => {
                let f: f64 = value("--min-hot-hit-rate")?.parse().map_err(|_| {
                    CliError::Usage("--min-hot-hit-rate takes a number in 0..1".into())
                })?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(CliError::Usage(
                        "--min-hot-hit-rate takes a number in 0..1".into(),
                    ));
                }
                o.min_hot_hit_rate = Some(f);
            }
            other => return Err(CliError::Usage(format!("unknown serve flag '{other}'"))),
        }
    }
    if !o.stress {
        return Err(CliError::Usage(
            "serve needs --stress: the solver service is in-process (no network \
             listener); the stress driver replays a seeded workload against it"
                .into(),
        ));
    }
    if o.service.rewarm && o.service.cache_dir.is_none() {
        return Err(CliError::Usage(
            "--rewarm needs --cache-dir: there is no persistent tier to rewarm from".into(),
        ));
    }
    if o.service.disk_fault_plan.is_some() && o.service.cache_dir.is_none() {
        return Err(CliError::Usage(
            "--disk-fault-plan needs --cache-dir: there is no disk tier to fault".into(),
        ));
    }
    if o.fault_plan.is_some() && !fault_every_set {
        o.workload.fault_every = 7;
    }
    Ok(o)
}

/// Replays the seeded workload against a fresh service, printing the
/// service summary and writing the requested artifacts.
fn run_serve(o: &ServeOptions, out: &mut dyn Write) -> Result<(), CliError> {
    let mut jobs = generate_workload(&o.workload);
    if let Some(plan) = &o.fault_plan {
        for j in jobs.iter_mut().filter(|j| j.fault.is_some()) {
            j.fault = Some(plan.clone());
        }
    }
    if let Some(format) = o.format {
        for j in &mut jobs {
            j.opts.format = format;
        }
    }
    if let Some(sim) = o.block_threshold {
        for j in &mut jobs {
            j.opts.block_threshold = sim;
        }
    }
    writeln!(
        out,
        "serve --stress: {} jobs ({} hot patterns, seed {}), {} workers, \
         queue {} slots, cache {} MiB",
        jobs.len(),
        o.workload.hot_patterns,
        o.workload.seed,
        o.service.workers,
        o.service.queue_cap,
        o.service.cache_budget_bytes >> 20,
    )?;
    if o.workload.hard_fraction > 0.0 {
        writeln!(
            out,
            "hard traffic: {:.0}% adversarial jobs, quarantine after {} strike(s)",
            o.workload.hard_fraction * 100.0,
            o.service.quarantine_strikes,
        )?;
    }
    if let Some(dir) = &o.service.cache_dir {
        writeln!(
            out,
            "disk tier: {} (host tier {} MiB{}{})",
            dir.display(),
            o.service.host_cache_budget_bytes >> 20,
            if o.service.rewarm { ", rewarm" } else { "" },
            if o.service.disk_fault_plan.is_some() {
                ", disk faults injected"
            } else {
                ""
            },
        )?;
    }
    let recorder = o.trace_out.as_ref().map(|_| Arc::new(Recorder::new()));
    let svc = match &recorder {
        Some(rec) => SolverService::start_traced(o.service.clone(), Arc::clone(rec)),
        None => SolverService::start(o.service.clone()),
    };

    let mut pending: VecDeque<JobHandle> = VecDeque::new();
    let mut failures: Vec<(u64, GpluError)> = Vec::new();
    let mut client_shed = 0u64;
    for spec in jobs {
        loop {
            // Bounded exponential backoff with deterministic jitter
            // absorbs transient queue-full spikes without the client
            // treating backpressure as terminal; only when the backoff
            // budget is exhausted does the driver reclaim a slot by
            // draining the oldest in-flight job.
            match svc.submit_with_backoff(spec.clone(), 4) {
                Ok(h) => {
                    pending.push_back(h);
                    break;
                }
                Err(GpluError::QueueFull { .. }) => match pending.pop_front() {
                    Some(h) => {
                        let id = h.id();
                        if let Err(e) = h.wait() {
                            failures.push((id, e));
                        }
                    }
                    None => std::thread::yield_now(),
                },
                Err(GpluError::LoadShed { .. }) => {
                    // Degraded-mode shedding is the service protecting
                    // itself — accounted, not an error and not retried
                    // (retrying shed traffic defeats the shed).
                    client_shed += 1;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    for h in pending {
        let id = h.id();
        if let Err(e) = h.wait() {
            failures.push((id, e));
        }
    }
    // Graceful drain-and-flush: every plan built by the run is durable
    // before the report is captured (no-op without --cache-dir).
    svc.drain();
    if client_shed > 0 {
        writeln!(
            out,
            "load shed: {client_shed} best-effort jobs dropped while degraded"
        )?;
    }

    let report = ServiceReport::capture_with_slo(&svc, o.slo.as_ref());
    let metrics_text = svc.observability().map(|obs| obs.registry().to_text());
    svc.shutdown();
    writeln!(out, "{}", report.summary())?;
    for (id, e) in failures.iter().take(10) {
        writeln!(out, "job {id} failed: {e}")?;
    }
    if failures.len() > 10 {
        writeln!(out, "... and {} more failed jobs", failures.len() - 10)?;
    }
    if let Some(path) = &o.service_report {
        std::fs::write(path, report.to_json().to_pretty())?;
        writeln!(out, "service report: {path}")?;
    }
    if let Some(path) = &o.metrics_out {
        match &metrics_text {
            Some(text) => {
                std::fs::write(path, text)?;
                writeln!(out, "metrics: {path}")?;
            }
            None => {
                return Err(CliError::Usage(
                    "--metrics-out needs a service with observability on".into(),
                ));
            }
        }
    }
    if let (Some(path), Some(rec)) = (&o.trace_out, &recorder) {
        let events = rec.events();
        std::fs::write(path, chrome_trace(&events))?;
        writeln!(out, "trace: {path} ({} events)", events.len())?;
    }
    if o.slo.is_some() {
        match &report.slo_eval {
            Some(slo) if !slo.pass() => {
                return Err(CliError::Check(format!(
                    "slo violated: {}",
                    slo.violations.join("; ")
                )));
            }
            Some(_) => {}
            None => {
                return Err(CliError::Usage(
                    "--slo needs a service with observability on".into(),
                ));
            }
        }
    }
    if let Some(min) = o.min_hot_hit_rate {
        let rate = report.stats.hot_hit_rate();
        if rate < min {
            return Err(CliError::Check(format!(
                "hot-pattern cache hit rate {rate:.3} below required {min:.3}"
            )));
        }
    }
    // Under fault injection a job may legitimately exhaust its recovery
    // ladder (e.g. a seeded *persistent* OOM), and under hard traffic the
    // residual gate / quarantine *should* reject jobs — those are typed
    // failures, not panics, and the run is still healthy. Without chaos,
    // any failure is a real regression.
    let chaos =
        o.workload.fault_every > 0 || o.fault_plan.is_some() || o.workload.hard_fraction > 0.0;
    if !failures.is_empty() && !chaos {
        return Err(CliError::Check(format!(
            "{} of {} jobs failed without fault injection",
            failures.len(),
            report.stats.submitted
        )));
    }
    Ok(())
}

fn load(path: &str) -> Result<Csr, CliError> {
    let a = coo_to_csr(&read_matrix_market_file(path)?);
    // The parser already rejects non-finite values; validate the built
    // structure too so corrupt files surface as typed errors, not index
    // panics further down the pipeline.
    a.validate()?;
    Ok(a)
}

fn gpu_for(a: &Csr, opts: &RunOptions) -> Gpu {
    let cfg = match opts.mem {
        Some(bytes) => GpuConfig::v100().with_memory(bytes),
        None => GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
    };
    match &opts.fault_plan {
        Some(plan) => Gpu::with_fault_plan(cfg, CostModel::default(), plan.clone()),
        None => Gpu::new(cfg),
    }
}

/// Builds the simulated device fleet for a `--devices` run.
fn fleet_for(a: &Csr, opts: &RunOptions) -> DeviceFleet {
    let cfg = match opts.mem {
        Some(bytes) => GpuConfig::v100().with_memory(bytes),
        None => GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
    };
    match &opts.fleet_fault_plans {
        Some(plans) => {
            DeviceFleet::with_fault_plans(opts.devices, cfg, CostModel::default(), plans)
        }
        None => DeviceFleet::new(opts.devices, cfg),
    }
}

/// Runs the pipeline, recording telemetry when any of `--trace-out`,
/// `--report-json`, or `--metrics` was given, and writes the requested
/// artifacts.
fn compute_with_telemetry(
    gpu: &Gpu,
    a: &Csr,
    opts: &RunOptions,
    out: &mut dyn Write,
) -> Result<LuFactorization, CliError> {
    if !opts.wants_telemetry() {
        return Ok(match &opts.checkpoint {
            Some(ckpt) => LuFactorization::compute_checkpointed(gpu, a, &opts.lu, ckpt, &NOOP)?,
            None => LuFactorization::compute(gpu, a, &opts.lu)?,
        });
    }
    let recorder = Recorder::new();
    let f = match &opts.checkpoint {
        Some(ckpt) => LuFactorization::compute_checkpointed(gpu, a, &opts.lu, ckpt, &recorder)?,
        None => LuFactorization::compute_traced(gpu, a, &opts.lu, &recorder)?,
    };
    write_telemetry_artifacts(a, &f, &recorder.into_events(), opts, out)?;
    Ok(f)
}

/// The `--devices` twin of [`compute_with_telemetry`]: runs the
/// fleet-sharded pipeline (checkpointing was already rejected at parse
/// time) and writes the same artifacts — the run report carries the
/// `fleet` section with per-device timings and interconnect traffic.
fn compute_fleet_with_telemetry(
    fleet: &DeviceFleet,
    a: &Csr,
    opts: &RunOptions,
    out: &mut dyn Write,
) -> Result<LuFactorization, CliError> {
    if !opts.wants_telemetry() {
        return Ok(LuFactorization::compute_fleet(fleet, a, &opts.lu)?);
    }
    let recorder = Recorder::new();
    let f = LuFactorization::compute_fleet_traced(fleet, a, &opts.lu, &recorder)?;
    write_telemetry_artifacts(a, &f, &recorder.into_events(), opts, out)?;
    Ok(f)
}

/// Writes the `--trace-out` / `--report-json` / `--metrics` artifacts
/// for a recorded run.
fn write_telemetry_artifacts(
    a: &Csr,
    f: &LuFactorization,
    events: &[gplu_trace::TraceEvent],
    opts: &RunOptions,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, chrome_trace(events))?;
        writeln!(out, "trace: {path} ({} events)", events.len())?;
    }
    if let Some(path) = &opts.report_json {
        let report = RunReport::new(a.n_rows(), a.nnz(), f.report.clone(), events);
        std::fs::write(path, report.to_json_string())?;
        writeln!(out, "report: {path}")?;
    }
    if opts.metrics {
        write!(out, "{}", metrics_text(events))?;
    }
    Ok(())
}

/// Prints injected-fault counters and the recovery record after a
/// factorization that ran under a fault plan (or recovered from genuine
/// pressure).
fn report_faults(out: &mut dyn Write, gpu: &Gpu, f: &LuFactorization) -> std::io::Result<()> {
    let stats = gpu.stats();
    if stats.injected_faults() > 0 {
        writeln!(
            out,
            "injected faults: {} oom, {} launch, {} squeeze",
            stats.injected_oom, stats.injected_launch_faults, stats.injected_squeezes
        )?;
    }
    if !f.report.recovery.is_empty() {
        writeln!(out, "recovery: {}", f.report.recovery.summary())?;
    }
    Ok(())
}

/// Fleet-wide fault and interconnect reporting for a `--devices` run:
/// sums injected faults across every device, then prints the fleet
/// summary line (per-device makespan share, deaths, exchange traffic).
fn report_fleet_faults(
    out: &mut dyn Write,
    fleet: &DeviceFleet,
    f: &LuFactorization,
) -> std::io::Result<()> {
    let (mut oom, mut launch, mut squeeze) = (0, 0, 0);
    for gpu in fleet.devices() {
        let stats = gpu.stats();
        oom += stats.injected_oom;
        launch += stats.injected_launch_faults;
        squeeze += stats.injected_squeezes;
    }
    if oom + launch + squeeze > 0 {
        writeln!(
            out,
            "injected faults: {oom} oom, {launch} launch, {squeeze} squeeze"
        )?;
    }
    if !f.report.recovery.is_empty() {
        writeln!(out, "recovery: {}", f.report.recovery.summary())?;
    }
    if let Some(fr) = &f.report.fleet {
        write!(out, "fleet: {} devices", fr.devices)?;
        if !fr.dead.is_empty() {
            write!(out, " ({} died: {:?})", fr.dead.len(), fr.dead)?;
        }
        writeln!(
            out,
            ", {} exchange legs, {} bytes over interconnect ({:.3} ms)",
            fr.exchanges,
            fr.exchange_bytes,
            fr.exchange_ns / 1.0e6
        )?;
        if fr.resharded_rows + fr.resharded_cols > 0 {
            writeln!(
                out,
                "resharded onto survivors: {} symbolic rows, {} numeric columns",
                fr.resharded_rows, fr.resharded_cols
            )?;
        }
    }
    Ok(())
}

/// Runs one command against `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("info") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("info needs a path".into()))?;
            let a = load(path)?;
            writeln!(
                out,
                "{path}: {} x {}, {} nonzeros ({:.2}/row)",
                a.n_rows(),
                a.n_cols(),
                a.nnz(),
                a.density()
            )?;
            writeln!(
                out,
                "structural diagonal: {}",
                if a.has_full_diagonal() {
                    "full"
                } else {
                    "DEFICIENT (will be repaired)"
                }
            )?;
            let state = 24 * a.n_rows() as u64 * a.n_rows() as u64;
            writeln!(
                out,
                "symbolic intermediate state: {} MiB (out-of-core on devices below that)",
                state >> 20
            )?;
            Ok(())
        }
        Some("factorize") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("factorize needs a path".into()))?;
            let opts = parse_options(&args[2..])?;
            let a = load(path)?;
            let f = if opts.devices > 1 {
                let fleet = fleet_for(&a, &opts);
                let f = compute_fleet_with_telemetry(&fleet, &a, &opts, out)?;
                writeln!(out, "{}", f.report.summary())?;
                report_fleet_faults(out, &fleet, &f)?;
                f
            } else {
                let gpu = gpu_for(&a, &opts);
                let f = compute_with_telemetry(&gpu, &a, &opts, out)?;
                writeln!(out, "{}", f.report.summary())?;
                report_faults(out, &gpu, &f)?;
                f
            };
            if let Some(ckpt) = &opts.checkpoint {
                writeln!(
                    out,
                    "checkpoints: {} (cadence {})",
                    ckpt.dir.display(),
                    ckpt.every
                )?;
            }
            writeln!(
                out,
                "levels: {} (widest {}), modes A/B/C: {:?}",
                f.report.n_levels, f.report.max_level_width, f.report.mode_mix
            )?;
            if let Some(m) = f.report.m_limit {
                writeln!(out, "dense format, M = {m} parallel columns")?;
            } else if f.report.probes > 0 {
                writeln!(
                    out,
                    "sorted-CSC format, {} binary-search probes",
                    f.report.probes
                )?;
            } else if f.report.gemm_tiles > 0 {
                writeln!(
                    out,
                    "sorted-CSC format, supernode-blocked access, {} gemm tiles, {} merge steps",
                    f.report.gemm_tiles, f.report.merge_steps
                )?;
            } else {
                writeln!(
                    out,
                    "sorted-CSC format, merge-join access, {} merge steps",
                    f.report.merge_steps
                )?;
            }
            writeln!(out, "total simulated time: {}", f.report.total())?;
            Ok(())
        }
        Some("solve") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("solve needs a path".into()))?;
            let opts = parse_options(&args[2..])?;
            let a = load(path)?;
            let fleet = (opts.devices > 1).then(|| fleet_for(&a, &opts));
            let gpu = gpu_for(&a, &opts);
            let f = match &fleet {
                Some(fleet) => {
                    let f = compute_fleet_with_telemetry(fleet, &a, &opts, out)?;
                    report_fleet_faults(out, fleet, &f)?;
                    f
                }
                None => {
                    let f = compute_with_telemetry(&gpu, &a, &opts, out)?;
                    report_faults(out, &gpu, &f)?;
                    f
                }
            };
            let x_true = vec![1.0; a.n_rows()];
            let b = a.spmv(&x_true);
            let x = if opts.gpu_solve {
                // On a fleet the triangular solve runs on device 0 — the
                // factors are replicated after the level-barrier exchanges.
                let solve_gpu = match &fleet {
                    Some(fleet) => fleet.device(0),
                    None => &gpu,
                };
                let plan = f.solve_plan();
                let (x, t) = f.solve_on_gpu(solve_gpu, &plan, &b)?;
                writeln!(out, "gpu solve: {t}")?;
                x
            } else {
                f.solve(&b)?
            };
            let err = x
                .iter()
                .zip(&x_true)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0f64, f64::max);
            writeln!(out, "{}", f.report.summary())?;
            writeln!(out, "solve max error vs x = 1: {err:.3e}")?;
            if f.report.repaired_diagonals > 0 {
                writeln!(
                    out,
                    "note: {} diagonals repaired; the solve targets the repaired system",
                    f.report.repaired_diagonals
                )?;
            }
            Ok(())
        }
        Some("gen") => {
            let [family, n, density, path] = [1, 2, 3, 4].map(|i| args.get(i).cloned());
            let (Some(family), Some(n), Some(density), Some(path)) = (family, n, density, path)
            else {
                return Err(CliError::Usage(
                    "gen needs <family> <n> <density> <out.mtx>".into(),
                ));
            };
            let n: usize = n
                .parse()
                .map_err(|_| CliError::Usage("n must be an integer".into()))?;
            let density: f64 = density
                .parse()
                .map_err(|_| CliError::Usage("density must be a number".into()))?;
            let seed: u64 = args.get(5).map(|s| s.parse().unwrap_or(42)).unwrap_or(42);
            let a = match family.as_str() {
                "circuit" => circuit::circuit(&circuit::CircuitParams {
                    n,
                    nnz_per_row: density,
                    seed,
                    ..Default::default()
                }),
                "mesh" => mesh::mesh(&mesh::MeshParams::for_target(n, density, seed)),
                "planar" => planar::planar(&planar::PlanarParams::for_target(n, density, seed)),
                // The adversarial families fix their own structure; the
                // density argument is accepted for command symmetry but
                // unused.
                "near-singular" => HardKind::NearSingular.generate(n, seed),
                "graded" => HardKind::Graded.generate(n, seed),
                "zero-diag" => HardKind::ZeroDiag.generate(n, seed),
                "sign-alternating" => HardKind::SignAlternating.generate(n, seed),
                other => return Err(CliError::Usage(format!("unknown family '{other}'"))),
            };
            let mut coo = Coo::with_capacity(a.n_rows(), a.n_cols(), a.nnz());
            for i in 0..a.n_rows() {
                for (j, v) in a.row_iter(i) {
                    coo.push(i, j, v);
                }
            }
            write_matrix_market_file(&path, &coo)?;
            writeln!(
                out,
                "wrote {path}: {} x {}, {} nonzeros",
                a.n_rows(),
                a.n_cols(),
                a.nnz()
            )?;
            Ok(())
        }
        Some("serve") => {
            let opts = parse_serve_options(&args[1..])?;
            run_serve(&opts, out)
        }
        Some("--help") | Some("-h") | None => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("gplu-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_info_factorize_solve_round_trip() {
        let path = tmp("roundtrip.mtx");
        let out = run_str(&["gen", "circuit", "400", "6", &path]).expect("gen");
        assert!(out.contains("wrote"));

        let out = run_str(&["info", &path]).expect("info");
        assert!(out.contains("400 x 400"));
        assert!(out.contains("full"));

        let out = run_str(&["factorize", &path, "--ordering", "amd"]).expect("factorize");
        assert!(out.contains("total simulated time"));

        let out = run_str(&["solve", &path, "--gpu-solve"]).expect("solve");
        assert!(out.contains("gpu solve"));
        let err: f64 = out
            .lines()
            .find(|l| l.contains("max error"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("error line");
        assert!(err < 1e-8, "solve error {err}");
    }

    #[test]
    fn planar_gen_is_deficient_and_solvable() {
        let path = tmp("planar.mtx");
        run_str(&["gen", "planar", "900", "5", &path]).expect("gen");
        let out = run_str(&["info", &path]).expect("info");
        assert!(out.contains("DEFICIENT"));
        let out = run_str(&["solve", &path]).expect("solve despite repair");
        assert!(out.contains("diagonals repaired"));
    }

    #[test]
    fn engine_and_format_flags_parse() {
        let o = parse_options(
            &[
                "--engine",
                "um-prefetch",
                "--format",
                "sparse",
                "--mem",
                "64",
                "--gpu-solve",
            ]
            .map(String::from),
        )
        .expect("parses");
        assert_eq!(o.lu.symbolic, SymbolicEngine::UmPrefetch);
        assert_eq!(o.lu.format, NumericFormat::Sparse);
        assert_eq!(o.mem, Some(64 << 20));
        assert!(o.gpu_solve);
    }

    #[test]
    fn merge_format_flag_parses_and_reports() {
        let o = parse_options(&["--format", "merge"].map(String::from)).expect("parses");
        assert_eq!(o.lu.format, NumericFormat::SparseMerge);

        let path = tmp("merge.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        let out = run_str(&["factorize", &path, "--format", "merge"]).expect("factorize");
        assert!(out.contains("merge-join access"), "got: {out}");
        let out = run_str(&["factorize", &path, "--format", "sparse"]).expect("factorize");
        assert!(out.contains("binary-search probes"), "got: {out}");
    }

    #[test]
    fn blocked_format_flag_parses_and_reports() {
        let o = parse_options(&["--format", "blocked"].map(String::from)).expect("parses");
        assert_eq!(o.lu.format, NumericFormat::SparseBlocked);
        assert_eq!(o.lu.block_threshold, 0.6);

        // Planar fill is dense enough for the blocking pass to find
        // supernodes, so the forced-blocked run reports its BLAS-3 tiles.
        let path = tmp("blocked.mtx");
        run_str(&["gen", "planar", "900", "5", &path]).expect("gen");
        let out = run_str(&["factorize", &path, "--format", "blocked"]).expect("factorize");
        assert!(out.contains("supernode-blocked access"), "got: {out}");
        assert!(out.contains("gemm tiles"), "got: {out}");
    }

    #[test]
    fn block_threshold_flag_parses_and_validates() {
        let o = parse_options(&["--block-threshold", "0.45"].map(String::from)).expect("parses");
        assert_eq!(o.lu.block_threshold, 0.45);
        for bad in ["1.5", "-0.1", "wat"] {
            assert!(
                matches!(
                    parse_options(&["--block-threshold".into(), bad.into()]),
                    Err(CliError::Usage(_))
                ),
                "'{bad}' must be rejected"
            );
        }
    }

    #[test]
    fn fault_plan_flag_parses_and_reports_recovery() {
        let o = parse_options(&["--fault-plan", "oom:alloc=3,seed:0"].map(String::from))
            .expect("parses");
        assert!(o.fault_plan.is_some());
        assert!(matches!(
            parse_options(&["--fault-plan".into(), "oom:alloc=wat".into()]),
            Err(CliError::Usage(_))
        ));

        let path = tmp("faulted.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        // Ordinal 3 is the symbolic state chunk: the engine backs off and
        // the run must still succeed, reporting what it did.
        let out = run_str(&[
            "factorize",
            &path,
            "--engine",
            "ooc",
            "--fault-plan",
            "oom:alloc=3",
        ])
        .expect("recovers");
        assert!(out.contains("injected faults: 1 oom"), "got: {out}");
        assert!(out.contains("recovery:"), "got: {out}");
        assert!(out.contains("chunk backoff"), "got: {out}");
    }

    #[test]
    fn devices_flag_parses_and_validates() {
        let o = parse_options(&["--devices", "4"].map(String::from)).expect("parses");
        assert_eq!(o.devices, 4);
        assert!(o.fleet_fault_plans.is_none());

        assert!(matches!(
            parse_options(&["--devices".into(), "0".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_options(&["--devices", "2", "--checkpoint-dir", "/tmp/ck"].map(String::from)),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn fleet_fault_plans_route_by_device_prefix() {
        // Flag order must not matter: the spec is resolved after the loop.
        for args in [
            ["--devices", "2", "--fault-plan", "dev=1:oom:alloc=1"],
            ["--fault-plan", "dev=1:oom:alloc=1", "--devices", "2"],
        ] {
            let o = parse_options(&args.map(String::from)).expect("parses");
            let plans = o.fleet_fault_plans.expect("fleet plans");
            assert_eq!(plans.len(), 2);
            assert!(o.fault_plan.is_none());
        }

        // A device selector without a fleet is meaningless.
        assert!(matches!(
            parse_options(&["--fault-plan".into(), "dev=1:oom:alloc=1".into()]),
            Err(CliError::Usage(_))
        ));
        // An out-of-range selector is caught at parse time.
        assert!(matches!(
            parse_options(
                &["--devices", "2", "--fault-plan", "dev=7:oom:alloc=1"].map(String::from)
            ),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn factorize_and_solve_across_a_fleet_match_the_single_device_run() {
        let path = tmp("fleet.mtx");
        run_str(&["gen", "circuit", "400", "6", &path]).expect("gen");

        let single = run_str(&["factorize", &path]).expect("single");
        let out = run_str(&["factorize", &path, "--devices", "4"]).expect("fleet");
        assert!(out.contains("fleet: 4 devices"), "got: {out}");
        assert!(out.contains("exchange legs"), "got: {out}");
        assert!(out.contains("total simulated time"), "got: {out}");
        // Bit-identity: everything after "fill" in the summary is a
        // deterministic counter (fill nnz, probes, pivots); only the
        // timings before it may differ between fleet sizes.
        let counters_of = |s: &str| {
            s.lines()
                .find_map(|l| l.split_once("| fill "))
                .map(|(_, tail)| tail.split(" | fleet").next().unwrap().to_owned())
                .expect("summary line")
        };
        assert_eq!(counters_of(&single), counters_of(&out));

        let out = run_str(&["solve", &path, "--devices", "4", "--gpu-solve"]).expect("solve");
        assert!(out.contains("gpu solve"), "got: {out}");
        let err: f64 = out
            .lines()
            .find(|l| l.contains("max error"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("error line");
        assert!(err < 1e-8, "solve error {err}");
    }

    #[test]
    fn fleet_device_fault_reshards_and_reports() {
        let path = tmp("fleet-fault.mtx");
        run_str(&["gen", "circuit", "400", "6", &path]).expect("gen");
        let out = run_str(&[
            "factorize",
            &path,
            "--devices",
            "4",
            "--fault-plan",
            "dev=2:oom:alloc=1",
        ])
        .expect("recovers");
        assert!(out.contains("injected faults: 1 oom"), "got: {out}");
        assert!(out.contains("recovery:"), "got: {out}");
        assert!(out.contains("died: [2]"), "got: {out}");
        assert!(out.contains("resharded onto survivors"), "got: {out}");
    }

    #[test]
    fn telemetry_flags_write_artifacts() {
        use gplu_trace::{json, JsonValue};

        let path = tmp("telemetry.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        let trace_path = tmp("telemetry-trace.json");
        let report_path = tmp("telemetry-report.json");
        let out = run_str(&[
            "factorize",
            &path,
            "--trace-out",
            &trace_path,
            "--report-json",
            &report_path,
            "--metrics",
        ])
        .expect("factorize with telemetry");
        assert!(out.contains("trace: "), "got: {out}");
        assert!(out.contains("report: "), "got: {out}");
        assert!(out.contains("spans (simulated time):"), "got: {out}");

        // Both artifacts parse; the trace has events, the report carries
        // the schema stamp and per-level records.
        let trace = json::parse(&std::fs::read_to_string(&trace_path).expect("trace file"))
            .expect("trace parses");
        let events = trace
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents");
        assert!(!events.is_empty());

        let report = json::parse(&std::fs::read_to_string(&report_path).expect("report file"))
            .expect("report parses");
        assert_eq!(
            report.get("schema_version").and_then(JsonValue::as_u64),
            Some(2)
        );
        let levels = report
            .get("levels")
            .and_then(JsonValue::as_arr)
            .expect("levels");
        assert!(!levels.is_empty(), "per-level records must be present");
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let o = parse_options(
            &["--checkpoint-dir", "/tmp/ck", "--checkpoint-every", "3"].map(String::from),
        )
        .expect("parses");
        let ckpt = o.checkpoint.expect("checkpoint options");
        assert_eq!(ckpt.dir, std::path::PathBuf::from("/tmp/ck"));
        assert_eq!(ckpt.every, 3);
        assert!(!ckpt.resume);

        let o = parse_options(&["--checkpoint-dir", "/tmp/ck", "--resume"].map(String::from))
            .expect("parses");
        assert!(o.checkpoint.expect("checkpoint options").resume);

        // Satellite guardrails: every bad combination is a typed usage
        // error, never a panic or a silent ignore.
        for bad in [
            vec!["--resume"],
            vec!["--checkpoint-every", "4"],
            vec!["--checkpoint-dir", "/tmp/ck", "--checkpoint-every", "0"],
            vec!["--checkpoint-dir", "/tmp/ck", "--checkpoint-every", "wat"],
            vec!["--checkpoint-dir"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(parse_options(&args), Err(CliError::Usage(_))),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn crash_then_resume_from_the_command_line() {
        let path = tmp("crashy.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        let dir = tmp("crashy-ckpt");
        let _ = std::fs::remove_dir_all(&dir);

        // First run is killed at an injected crash point mid-factorization.
        let err = run_str(&[
            "factorize",
            &path,
            "--checkpoint-dir",
            &dir,
            "--checkpoint-every",
            "2",
            "--fault-plan",
            "crash:at=5",
        ])
        .unwrap_err();
        assert!(
            matches!(err, CliError::Pipeline(GpluError::Crashed { ordinal: 5 })),
            "got {err}"
        );

        // A snapshot survived the crash...
        let snapshots = std::fs::read_dir(&dir).expect("checkpoint dir").count();
        assert!(snapshots > 0, "no snapshots written before the crash");

        // ...and the rerun resumes from it and completes.
        let out = run_str(&[
            "factorize",
            &path,
            "--checkpoint-dir",
            &dir,
            "--checkpoint-every",
            "2",
            "--resume",
        ])
        .expect("resume completes");
        assert!(out.contains("total simulated time"), "got: {out}");
        assert!(out.contains("checkpoints: "), "got: {out}");

        // Resuming against a different matrix is a typed mismatch.
        let other = tmp("crashy-other.mtx");
        run_str(&["gen", "circuit", "310", "5", &other]).expect("gen");
        let err =
            run_str(&["factorize", &other, "--checkpoint-dir", &dir, "--resume"]).unwrap_err();
        assert!(
            matches!(err, CliError::Pipeline(GpluError::CheckpointMismatch(_))),
            "got {err}"
        );
    }

    #[test]
    fn repair_singular_flag_parses() {
        let o = parse_options(&["--repair-singular".to_string()]).expect("parses");
        assert!(o.lu.preprocess.repair_singular);
    }

    #[test]
    fn pivot_and_gate_flags_parse_and_validate() {
        // Defaults: no pivoting, gate on, no escalation.
        let o = parse_options(&[]).expect("parses");
        assert_eq!(o.lu.pivot, PivotPolicy::NoPivot);
        assert!(o.lu.gate.enabled);
        assert!(!o.lu.gate.escalate);

        let o = parse_options(&["--pivot", "threshold"].map(String::from)).expect("parses");
        assert_eq!(
            o.lu.pivot,
            PivotPolicy::Threshold {
                tau: DEFAULT_PIVOT_TAU
            }
        );

        // A bare --pivot-tau implies threshold pivoting.
        let o = parse_options(&["--pivot-tau", "0.5"].map(String::from)).expect("parses");
        assert_eq!(o.lu.pivot, PivotPolicy::Threshold { tau: 0.5 });

        let o = parse_options(&["--pivot", "static", "--static-floor", "1e-6"].map(String::from))
            .expect("parses");
        assert_eq!(o.lu.pivot, PivotPolicy::Static { threshold: 1e-6 });

        let o = parse_options(
            &["--gate-threshold", "1e-9", "--escalate", "--pivot", "none"].map(String::from),
        )
        .expect("parses");
        assert_eq!(o.lu.gate.threshold, 1e-9);
        assert!(o.lu.gate.escalate);
        assert_eq!(o.lu.pivot, PivotPolicy::NoPivot);

        let o = parse_options(&["--no-gate".to_string()]).expect("parses");
        assert!(!o.lu.gate.enabled);

        // Every conflicting or malformed combination is a typed usage
        // error, never a silently dropped knob.
        for bad in [
            vec!["--pivot", "partial"],
            vec!["--pivot"],
            vec!["--pivot-tau", "0"],
            vec!["--pivot-tau", "1.5"],
            vec!["--pivot-tau", "wat"],
            vec!["--pivot", "none", "--pivot-tau", "0.2"],
            vec!["--pivot", "static", "--pivot-tau", "0.2"],
            vec!["--pivot", "threshold", "--static-floor", "1e-8"],
            vec!["--static-floor", "1e-8"],
            vec!["--pivot-tau", "0.2", "--static-floor", "1e-8"],
            vec!["--static-floor", "-1.0", "--pivot", "static"],
            vec!["--gate-threshold", "0"],
            vec!["--gate-threshold", "wat"],
            vec!["--no-gate", "--escalate"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(parse_options(&args), Err(CliError::Usage(_))),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn hard_families_generate_and_threshold_pivoting_recovers_them() {
        let path = tmp("hard.mtx");
        run_str(&["gen", "near-singular", "200", "6", &path, "5"]).expect("gen");
        let out = run_str(&["info", &path]).expect("info");
        assert!(out.contains("200 x 200"));

        // No-pivot either passes the gate or is refused typed — and
        // threshold pivoting must turn this family into a verified run.
        match run_str(&["factorize", &path]) {
            Ok(out) => assert!(out.contains("total simulated time"), "got: {out}"),
            Err(CliError::Pipeline(
                GpluError::NumericallySingular { .. } | GpluError::SingularPivot { .. },
            )) => {}
            Err(e) => panic!("no-pivot on hard traffic must fail typed, got {e}"),
        }
        let out =
            run_str(&["factorize", &path, "--pivot", "threshold"]).expect("threshold recovers");
        assert!(out.contains("pivot swaps"), "got: {out}");

        for family in ["graded", "zero-diag", "sign-alternating"] {
            let p = tmp(&format!("hard-{family}.mtx"));
            run_str(&["gen", family, "120", "6", &p]).expect("gen");
            assert!(run_str(&["info", &p]).is_ok(), "{family} round-trips");
        }
    }

    #[test]
    fn threshold_pivoting_runs_from_the_command_line() {
        let path = tmp("pivot.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        let out = run_str(&["factorize", &path, "--pivot", "threshold"]).expect("factorize");
        assert!(out.contains("total simulated time"), "got: {out}");
        let out = run_str(&["solve", &path, "--pivot", "threshold", "--escalate"]).expect("solve");
        let err: f64 = out
            .lines()
            .find(|l| l.contains("max error"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("error line");
        assert!(err < 1e-6, "solve error {err}");
    }

    #[test]
    fn corrupt_matrix_file_is_a_typed_error() {
        let path = tmp("nan.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 nan\n",
        )
        .expect("write");
        let err = run_str(&["info", &path]).unwrap_err();
        assert!(
            matches!(
                err,
                CliError::Sparse(SparseError::NonFiniteValue { row: 1, col: 1 })
            ),
            "got {err}"
        );
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        assert!(matches!(
            parse_options(&["--engine".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_options(&["--format".into(), "csc".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["wat".into()], &mut Vec::new()),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["--help"]).expect("help");
        assert!(out.contains("factorize"));
        assert!(out.contains("--ordering"));
        assert!(out.contains("serve --stress"));
    }

    #[test]
    fn serve_flags_parse_with_defaults_and_overrides() {
        let o = parse_serve_options(&["--stress".to_string()]).expect("parses");
        assert_eq!(o.workload.jobs, 500);
        assert_eq!(o.service.workers, 4);
        assert!(o.fault_plan.is_none());

        let o = parse_serve_options(
            &[
                "--stress",
                "--jobs",
                "50",
                "--workers",
                "2",
                "--seed",
                "9",
                "--queue-cap",
                "16",
                "--cache-budget",
                "8",
                "--hot-patterns",
                "2",
                "--min-hot-hit-rate",
                "0.8",
            ]
            .map(String::from),
        )
        .expect("parses");
        assert_eq!(o.workload.jobs, 50);
        assert_eq!(o.workload.seed, 9);
        assert_eq!(o.service.workers, 2);
        assert_eq!(o.service.queue_cap, 16);
        assert_eq!(o.service.cache_budget_bytes, 8 << 20);
        assert_eq!(o.workload.hot_patterns, 2);
        assert_eq!(o.min_hot_hit_rate, Some(0.8));

        // A custom plan without a cadence implies one, so the chaos
        // actually reaches the workload.
        let o = parse_serve_options(&["--stress", "--fault-plan", "seed:3"].map(String::from))
            .expect("parses");
        assert!(o.fault_plan.is_some());
        assert_eq!(o.workload.fault_every, 7);

        let o = parse_serve_options(
            &[
                "--stress",
                "--format",
                "blocked",
                "--block-threshold",
                "0.7",
            ]
            .map(String::from),
        )
        .expect("parses");
        assert_eq!(o.format, Some(NumericFormat::SparseBlocked));
        assert_eq!(o.block_threshold, Some(0.7));

        let o = parse_serve_options(
            &[
                "--stress",
                "--hard-fraction",
                "0.25",
                "--quarantine-strikes",
                "3",
            ]
            .map(String::from),
        )
        .expect("parses");
        assert_eq!(o.workload.hard_fraction, 0.25);
        assert_eq!(o.service.quarantine_strikes, 3);
        for bad in [
            vec!["--stress", "--hard-fraction", "1.5"],
            vec!["--stress", "--hard-fraction", "wat"],
            vec!["--stress", "--quarantine-strikes", "wat"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(parse_serve_options(&args), Err(CliError::Usage(_))),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn serve_stress_with_hard_traffic_reports_the_quarantine() {
        use gplu_trace::{json, JsonValue};

        let report_path = tmp("serve-hard-report.json");
        let out = run_str(&[
            "serve",
            "--stress",
            "--jobs",
            "60",
            "--workers",
            "2",
            "--seed",
            "11",
            "--hot-n",
            "100",
            "--cold-n",
            "64",
            "--hard-fraction",
            "0.4",
            "--service-report",
            &report_path,
        ])
        .expect("hard-traffic stress run must not be a driver failure");
        assert!(out.contains("hard traffic: 40%"), "got: {out}");
        assert!(out.contains("gate failures"), "got: {out}");

        let report = json::parse(&std::fs::read_to_string(&report_path).expect("report file"))
            .expect("report parses");
        let rob = report.get("robustness").expect("robustness section");
        // Adversarial jobs either pass the gate after recovery or land as
        // typed rejections; the counters must be present either way.
        assert!(rob
            .get("gate_failures")
            .and_then(JsonValue::as_u64)
            .is_some());
        assert!(rob
            .get("quarantined_patterns")
            .and_then(JsonValue::as_u64)
            .is_some());
        let jobs = report.get("jobs").expect("jobs section");
        let completed = jobs.get("completed").and_then(JsonValue::as_u64).unwrap();
        let failed = jobs.get("failed").and_then(JsonValue::as_u64).unwrap();
        assert_eq!(completed + failed, 60, "every job resolves");
    }

    #[test]
    fn serve_without_stress_or_with_bad_flags_is_a_usage_error() {
        for bad in [
            vec!["serve"],
            vec!["serve", "--jobs", "10"],
            vec!["serve", "--stress", "--jobs", "wat"],
            vec!["serve", "--stress", "--min-hot-hit-rate", "1.5"],
            vec!["serve", "--stress", "--listen"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(run(&args, &mut Vec::new()), Err(CliError::Usage(_))),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn serve_stress_runs_reports_and_writes_artifacts() {
        use gplu_trace::{json, JsonValue};

        let report_path = tmp("serve-report.json");
        let trace_path = tmp("serve-trace.json");
        let out = run_str(&[
            "serve",
            "--stress",
            "--jobs",
            "40",
            "--workers",
            "2",
            "--seed",
            "7",
            "--hot-patterns",
            "2",
            "--hot-n",
            "120",
            "--cold-n",
            "80",
            "--fault-every",
            "9",
            "--service-report",
            &report_path,
            "--trace-out",
            &trace_path,
            "--min-hot-hit-rate",
            "0.5",
        ])
        .expect("stress run");
        assert!(out.contains("hot hit rate"), "got: {out}");
        assert!(out.contains("service report: "), "got: {out}");
        assert!(out.contains("trace: "), "got: {out}");

        let report = json::parse(&std::fs::read_to_string(&report_path).expect("report file"))
            .expect("report parses");
        assert_eq!(
            report
                .get("service_schema_version")
                .and_then(JsonValue::as_u64),
            Some(4)
        );
        for section in ["metrics", "tenants", "slo", "drift", "fleet"] {
            assert!(
                report.get(section).is_some(),
                "v2 observability section {section} missing"
            );
        }
        let cache = report.get("cache").expect("cache section");
        for tier in ["host", "disk"] {
            assert!(
                cache.get(tier).is_some(),
                "v3 cache tier section {tier} missing"
            );
        }
        let jobs = report.get("jobs").expect("jobs section");
        assert_eq!(jobs.get("submitted").and_then(JsonValue::as_u64), Some(40));
        let completed = jobs.get("completed").and_then(JsonValue::as_u64).unwrap();
        let failed = jobs.get("failed").and_then(JsonValue::as_u64).unwrap();
        assert_eq!(completed + failed, 40, "every job resolves");
        let faults = report.get("faults").expect("faults section");
        assert!(
            faults.get("injected").and_then(JsonValue::as_u64) > Some(0),
            "fault cadence 9 over 40 jobs must inject something"
        );

        let trace = json::parse(&std::fs::read_to_string(&trace_path).expect("trace file"))
            .expect("trace parses");
        let events = trace
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents");
        assert!(!events.is_empty());
    }

    #[test]
    fn serve_stress_enforces_the_hit_rate_floor() {
        // All-cold traffic (hot fraction comes from the workload mix; with
        // one job per pattern nothing can hit) against an impossible floor.
        let err = run_str(&[
            "serve",
            "--stress",
            "--jobs",
            "6",
            "--workers",
            "1",
            "--hot-patterns",
            "6",
            "--hot-n",
            "60",
            "--cold-n",
            "50",
            "--min-hot-hit-rate",
            "1.0",
        ])
        .unwrap_err();
        assert!(
            matches!(err, CliError::Check(_)),
            "expected a check failure, got {err}"
        );
    }
}
