//! Implementation of the `gplu` command-line driver (library-shaped so the
//! command logic is unit-testable without spawning processes).

use gplu_core::{
    CheckpointOptions, GpluError, LuFactorization, LuOptions, NumericFormat, RunReport,
    SymbolicEngine,
};
use gplu_sim::{CostModel, FaultPlan, Gpu, GpuConfig};
use gplu_sparse::convert::coo_to_csr;
use gplu_sparse::gen::{circuit, mesh, planar};
use gplu_sparse::io::{read_matrix_market_file, write_matrix_market_file};
use gplu_sparse::ordering::OrderingKind;
use gplu_sparse::{Coo, Csr, SparseError};
use gplu_trace::{chrome_trace, metrics_text, Recorder, NOOP};
use std::fmt;
use std::io::Write;

/// Usage text shared by `--help` and usage errors.
pub const USAGE: &str = "\
gplu — end-to-end sparse LU factorization on a simulated GPU

commands:
  info <matrix.mtx>
  factorize <matrix.mtx> [options]
  solve <matrix.mtx> [options] [--gpu-solve]
  gen <circuit|mesh|planar> <n> <nnz_per_row> <out.mtx> [seed]

options:
  --ordering amd|rcm|natural    fill-reducing ordering (default amd)
  --engine ooc|dynamic|um|um-prefetch
                                symbolic engine (default dynamic)
  --format auto|dense|sparse|merge
                                numeric format (default auto: dense until the
                                paper's switch criterion fires, then merge-join
                                CSC; 'sparse' forces binary-search CSC)
  --mem <MiB>                   device memory (default: out-of-core profile)
  --repair-singular             patch pivots that cancel to zero with the
                                repair value and retry the numeric phase once
  --fault-plan <spec>           inject deterministic device faults; spec is a
                                comma list of oom:alloc=N[:persistent],
                                squeeze:alloc=N:KEEP%, badlaunch:KERNEL=N
                                [:persistent], crash:at=N (kill the process at
                                its Nth crash point — checkpoint write
                                boundaries), or seed:S (random plan).
                                Also read from GPLU_FAULT_PLAN when unset.
  --checkpoint-dir <dir>        cut crash-consistent snapshots into <dir>: one
                                at every phase boundary plus periodic partial
                                snapshots inside the symbolic/numeric phases
  --checkpoint-every <N>        partial-snapshot cadence in completed symbolic
                                iterations / numeric levels (default 8;
                                requires --checkpoint-dir, must be >= 1)
  --resume                      resume from the latest valid snapshot in
                                --checkpoint-dir (which must belong to the
                                same matrix) instead of starting over
  --trace-out <path>            write a Chrome trace-event JSON file of the
                                run (open in Perfetto / chrome://tracing)
  --report-json <path>          write the versioned machine-readable run
                                report (phase timings, per-level records,
                                GPU counters, recovery log)
  --metrics                     print span histograms and counters to stdout
";

/// CLI error type.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments (exit code 2, usage printed).
    Usage(String),
    /// Matrix/IO failure.
    Sparse(SparseError),
    /// Pipeline failure.
    Pipeline(GpluError),
    /// Output failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Sparse(e) => write!(f, "{e}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SparseError> for CliError {
    fn from(e: SparseError) -> Self {
        CliError::Sparse(e)
    }
}
impl From<GpluError> for CliError {
    fn from(e: GpluError) -> Self {
        CliError::Pipeline(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parsed factorize/solve options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Pipeline options assembled from the flags.
    pub lu: LuOptions,
    /// Device memory override (bytes).
    pub mem: Option<u64>,
    /// Solve on the simulated GPU.
    pub gpu_solve: bool,
    /// Deterministic fault-injection plan (`--fault-plan` or
    /// `GPLU_FAULT_PLAN`).
    pub fault_plan: Option<FaultPlan>,
    /// Write a Chrome trace-event file here (`--trace-out`).
    pub trace_out: Option<String>,
    /// Write the machine-readable run report here (`--report-json`).
    pub report_json: Option<String>,
    /// Print span histograms and counters (`--metrics`).
    pub metrics: bool,
    /// Crash-consistent checkpointing (`--checkpoint-dir`,
    /// `--checkpoint-every`, `--resume`), validated as a unit.
    pub checkpoint: Option<CheckpointOptions>,
}

impl RunOptions {
    /// True when any telemetry output was requested (the pipeline then
    /// runs with a live recorder instead of the no-op sink).
    pub fn wants_telemetry(&self) -> bool {
        self.trace_out.is_some() || self.report_json.is_some() || self.metrics
    }
}

/// Parses the option flags shared by `factorize` and `solve`.
pub fn parse_options(args: &[String]) -> Result<RunOptions, CliError> {
    let mut opts = RunOptions {
        lu: LuOptions {
            symbolic: SymbolicEngine::OocDynamic,
            ..Default::default()
        },
        mem: None,
        gpu_solve: false,
        fault_plan: None,
        trace_out: None,
        report_json: None,
        metrics: false,
        checkpoint: None,
    };
    let mut ckpt_dir: Option<String> = None;
    let mut ckpt_every: Option<usize> = None;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--ordering" => {
                opts.lu.preprocess.ordering = match value("--ordering")?.as_str() {
                    "amd" => OrderingKind::MinDegree,
                    "rcm" => OrderingKind::Rcm,
                    "natural" => OrderingKind::Natural,
                    other => return Err(CliError::Usage(format!("unknown ordering '{other}'"))),
                };
            }
            "--engine" => {
                opts.lu.symbolic = match value("--engine")?.as_str() {
                    "ooc" => SymbolicEngine::Ooc,
                    "dynamic" => SymbolicEngine::OocDynamic,
                    "um" => SymbolicEngine::UmNoPrefetch,
                    "um-prefetch" => SymbolicEngine::UmPrefetch,
                    other => return Err(CliError::Usage(format!("unknown engine '{other}'"))),
                };
            }
            "--format" => {
                opts.lu.format = match value("--format")?.as_str() {
                    "auto" => NumericFormat::Auto,
                    "dense" => NumericFormat::Dense,
                    "sparse" => NumericFormat::Sparse,
                    "merge" => NumericFormat::SparseMerge,
                    other => return Err(CliError::Usage(format!("unknown format '{other}'"))),
                };
            }
            "--mem" => {
                let mib: u64 = value("--mem")?
                    .parse()
                    .map_err(|_| CliError::Usage("--mem takes MiB as an integer".into()))?;
                opts.mem = Some(mib << 20);
            }
            "--gpu-solve" => opts.gpu_solve = true,
            "--checkpoint-dir" => ckpt_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                let n: usize = value("--checkpoint-every")?.parse().map_err(|_| {
                    CliError::Usage("--checkpoint-every takes a positive integer".into())
                })?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--checkpoint-every must be at least 1 (0 would never cut a snapshot)"
                            .into(),
                    ));
                }
                ckpt_every = Some(n);
            }
            "--resume" => resume = true,
            "--repair-singular" => opts.lu.preprocess.repair_singular = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--report-json" => opts.report_json = Some(value("--report-json")?),
            "--metrics" => opts.metrics = true,
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                opts.fault_plan = Some(
                    FaultPlan::parse(&spec)
                        .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?,
                );
            }
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    if opts.fault_plan.is_none() {
        opts.fault_plan = FaultPlan::from_env()
            .map_err(|e| CliError::Usage(format!("{}: {e}", gplu_sim::FAULT_PLAN_ENV)))?;
    }
    opts.checkpoint = match ckpt_dir {
        Some(dir) => {
            let mut ckpt = CheckpointOptions::new(dir).resume(resume);
            if let Some(n) = ckpt_every {
                ckpt = ckpt.every(n);
            }
            Some(ckpt)
        }
        None if resume => {
            return Err(CliError::Usage(
                "--resume requires --checkpoint-dir (where should the snapshot come from?)".into(),
            ));
        }
        None if ckpt_every.is_some() => {
            return Err(CliError::Usage(
                "--checkpoint-every requires --checkpoint-dir".into(),
            ));
        }
        None => None,
    };
    Ok(opts)
}

fn load(path: &str) -> Result<Csr, CliError> {
    let a = coo_to_csr(&read_matrix_market_file(path)?);
    // The parser already rejects non-finite values; validate the built
    // structure too so corrupt files surface as typed errors, not index
    // panics further down the pipeline.
    a.validate()?;
    Ok(a)
}

fn gpu_for(a: &Csr, opts: &RunOptions) -> Gpu {
    let cfg = match opts.mem {
        Some(bytes) => GpuConfig::v100().with_memory(bytes),
        None => GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
    };
    match &opts.fault_plan {
        Some(plan) => Gpu::with_fault_plan(cfg, CostModel::default(), plan.clone()),
        None => Gpu::new(cfg),
    }
}

/// Runs the pipeline, recording telemetry when any of `--trace-out`,
/// `--report-json`, or `--metrics` was given, and writes the requested
/// artifacts.
fn compute_with_telemetry(
    gpu: &Gpu,
    a: &Csr,
    opts: &RunOptions,
    out: &mut dyn Write,
) -> Result<LuFactorization, CliError> {
    if !opts.wants_telemetry() {
        return Ok(match &opts.checkpoint {
            Some(ckpt) => LuFactorization::compute_checkpointed(gpu, a, &opts.lu, ckpt, &NOOP)?,
            None => LuFactorization::compute(gpu, a, &opts.lu)?,
        });
    }
    let recorder = Recorder::new();
    let f = match &opts.checkpoint {
        Some(ckpt) => LuFactorization::compute_checkpointed(gpu, a, &opts.lu, ckpt, &recorder)?,
        None => LuFactorization::compute_traced(gpu, a, &opts.lu, &recorder)?,
    };
    let events = recorder.into_events();
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, chrome_trace(&events))?;
        writeln!(out, "trace: {path} ({} events)", events.len())?;
    }
    if let Some(path) = &opts.report_json {
        let report = RunReport::new(a.n_rows(), a.nnz(), f.report.clone(), &events);
        std::fs::write(path, report.to_json_string())?;
        writeln!(out, "report: {path}")?;
    }
    if opts.metrics {
        write!(out, "{}", metrics_text(&events))?;
    }
    Ok(f)
}

/// Prints injected-fault counters and the recovery record after a
/// factorization that ran under a fault plan (or recovered from genuine
/// pressure).
fn report_faults(out: &mut dyn Write, gpu: &Gpu, f: &LuFactorization) -> std::io::Result<()> {
    let stats = gpu.stats();
    if stats.injected_faults() > 0 {
        writeln!(
            out,
            "injected faults: {} oom, {} launch, {} squeeze",
            stats.injected_oom, stats.injected_launch_faults, stats.injected_squeezes
        )?;
    }
    if !f.report.recovery.is_empty() {
        writeln!(out, "recovery: {}", f.report.recovery.summary())?;
    }
    Ok(())
}

/// Runs one command against `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("info") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("info needs a path".into()))?;
            let a = load(path)?;
            writeln!(
                out,
                "{path}: {} x {}, {} nonzeros ({:.2}/row)",
                a.n_rows(),
                a.n_cols(),
                a.nnz(),
                a.density()
            )?;
            writeln!(
                out,
                "structural diagonal: {}",
                if a.has_full_diagonal() {
                    "full"
                } else {
                    "DEFICIENT (will be repaired)"
                }
            )?;
            let state = 24 * a.n_rows() as u64 * a.n_rows() as u64;
            writeln!(
                out,
                "symbolic intermediate state: {} MiB (out-of-core on devices below that)",
                state >> 20
            )?;
            Ok(())
        }
        Some("factorize") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("factorize needs a path".into()))?;
            let opts = parse_options(&args[2..])?;
            let a = load(path)?;
            let gpu = gpu_for(&a, &opts);
            let f = compute_with_telemetry(&gpu, &a, &opts, out)?;
            writeln!(out, "{}", f.report.summary())?;
            report_faults(out, &gpu, &f)?;
            if let Some(ckpt) = &opts.checkpoint {
                writeln!(
                    out,
                    "checkpoints: {} (cadence {})",
                    ckpt.dir.display(),
                    ckpt.every
                )?;
            }
            writeln!(
                out,
                "levels: {} (widest {}), modes A/B/C: {:?}",
                f.report.n_levels, f.report.max_level_width, f.report.mode_mix
            )?;
            if let Some(m) = f.report.m_limit {
                writeln!(out, "dense format, M = {m} parallel columns")?;
            } else if f.report.probes > 0 {
                writeln!(
                    out,
                    "sorted-CSC format, {} binary-search probes",
                    f.report.probes
                )?;
            } else {
                writeln!(
                    out,
                    "sorted-CSC format, merge-join access, {} merge steps",
                    f.report.merge_steps
                )?;
            }
            writeln!(out, "total simulated time: {}", f.report.total())?;
            Ok(())
        }
        Some("solve") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("solve needs a path".into()))?;
            let opts = parse_options(&args[2..])?;
            let a = load(path)?;
            let gpu = gpu_for(&a, &opts);
            let f = compute_with_telemetry(&gpu, &a, &opts, out)?;
            report_faults(out, &gpu, &f)?;
            let x_true = vec![1.0; a.n_rows()];
            let b = a.spmv(&x_true);
            let x = if opts.gpu_solve {
                let plan = f.solve_plan();
                let (x, t) = f.solve_on_gpu(&gpu, &plan, &b)?;
                writeln!(out, "gpu solve: {t}")?;
                x
            } else {
                f.solve(&b)?
            };
            let err = x
                .iter()
                .zip(&x_true)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0f64, f64::max);
            writeln!(out, "{}", f.report.summary())?;
            writeln!(out, "solve max error vs x = 1: {err:.3e}")?;
            if f.report.repaired_diagonals > 0 {
                writeln!(
                    out,
                    "note: {} diagonals repaired; the solve targets the repaired system",
                    f.report.repaired_diagonals
                )?;
            }
            Ok(())
        }
        Some("gen") => {
            let [family, n, density, path] = [1, 2, 3, 4].map(|i| args.get(i).cloned());
            let (Some(family), Some(n), Some(density), Some(path)) = (family, n, density, path)
            else {
                return Err(CliError::Usage(
                    "gen needs <family> <n> <density> <out.mtx>".into(),
                ));
            };
            let n: usize = n
                .parse()
                .map_err(|_| CliError::Usage("n must be an integer".into()))?;
            let density: f64 = density
                .parse()
                .map_err(|_| CliError::Usage("density must be a number".into()))?;
            let seed: u64 = args.get(5).map(|s| s.parse().unwrap_or(42)).unwrap_or(42);
            let a = match family.as_str() {
                "circuit" => circuit::circuit(&circuit::CircuitParams {
                    n,
                    nnz_per_row: density,
                    seed,
                    ..Default::default()
                }),
                "mesh" => mesh::mesh(&mesh::MeshParams::for_target(n, density, seed)),
                "planar" => planar::planar(&planar::PlanarParams::for_target(n, density, seed)),
                other => return Err(CliError::Usage(format!("unknown family '{other}'"))),
            };
            let mut coo = Coo::with_capacity(a.n_rows(), a.n_cols(), a.nnz());
            for i in 0..a.n_rows() {
                for (j, v) in a.row_iter(i) {
                    coo.push(i, j, v);
                }
            }
            write_matrix_market_file(&path, &coo)?;
            writeln!(
                out,
                "wrote {path}: {} x {}, {} nonzeros",
                a.n_rows(),
                a.n_cols(),
                a.nnz()
            )?;
            Ok(())
        }
        Some("--help") | Some("-h") | None => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("gplu-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_info_factorize_solve_round_trip() {
        let path = tmp("roundtrip.mtx");
        let out = run_str(&["gen", "circuit", "400", "6", &path]).expect("gen");
        assert!(out.contains("wrote"));

        let out = run_str(&["info", &path]).expect("info");
        assert!(out.contains("400 x 400"));
        assert!(out.contains("full"));

        let out = run_str(&["factorize", &path, "--ordering", "amd"]).expect("factorize");
        assert!(out.contains("total simulated time"));

        let out = run_str(&["solve", &path, "--gpu-solve"]).expect("solve");
        assert!(out.contains("gpu solve"));
        let err: f64 = out
            .lines()
            .find(|l| l.contains("max error"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("error line");
        assert!(err < 1e-8, "solve error {err}");
    }

    #[test]
    fn planar_gen_is_deficient_and_solvable() {
        let path = tmp("planar.mtx");
        run_str(&["gen", "planar", "900", "5", &path]).expect("gen");
        let out = run_str(&["info", &path]).expect("info");
        assert!(out.contains("DEFICIENT"));
        let out = run_str(&["solve", &path]).expect("solve despite repair");
        assert!(out.contains("diagonals repaired"));
    }

    #[test]
    fn engine_and_format_flags_parse() {
        let o = parse_options(
            &[
                "--engine",
                "um-prefetch",
                "--format",
                "sparse",
                "--mem",
                "64",
                "--gpu-solve",
            ]
            .map(String::from),
        )
        .expect("parses");
        assert_eq!(o.lu.symbolic, SymbolicEngine::UmPrefetch);
        assert_eq!(o.lu.format, NumericFormat::Sparse);
        assert_eq!(o.mem, Some(64 << 20));
        assert!(o.gpu_solve);
    }

    #[test]
    fn merge_format_flag_parses_and_reports() {
        let o = parse_options(&["--format", "merge"].map(String::from)).expect("parses");
        assert_eq!(o.lu.format, NumericFormat::SparseMerge);

        let path = tmp("merge.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        let out = run_str(&["factorize", &path, "--format", "merge"]).expect("factorize");
        assert!(out.contains("merge-join access"), "got: {out}");
        let out = run_str(&["factorize", &path, "--format", "sparse"]).expect("factorize");
        assert!(out.contains("binary-search probes"), "got: {out}");
    }

    #[test]
    fn fault_plan_flag_parses_and_reports_recovery() {
        let o = parse_options(&["--fault-plan", "oom:alloc=3,seed:0"].map(String::from))
            .expect("parses");
        assert!(o.fault_plan.is_some());
        assert!(matches!(
            parse_options(&["--fault-plan".into(), "oom:alloc=wat".into()]),
            Err(CliError::Usage(_))
        ));

        let path = tmp("faulted.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        // Ordinal 3 is the symbolic state chunk: the engine backs off and
        // the run must still succeed, reporting what it did.
        let out = run_str(&[
            "factorize",
            &path,
            "--engine",
            "ooc",
            "--fault-plan",
            "oom:alloc=3",
        ])
        .expect("recovers");
        assert!(out.contains("injected faults: 1 oom"), "got: {out}");
        assert!(out.contains("recovery:"), "got: {out}");
        assert!(out.contains("chunk backoff"), "got: {out}");
    }

    #[test]
    fn telemetry_flags_write_artifacts() {
        use gplu_trace::{json, JsonValue};

        let path = tmp("telemetry.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        let trace_path = tmp("telemetry-trace.json");
        let report_path = tmp("telemetry-report.json");
        let out = run_str(&[
            "factorize",
            &path,
            "--trace-out",
            &trace_path,
            "--report-json",
            &report_path,
            "--metrics",
        ])
        .expect("factorize with telemetry");
        assert!(out.contains("trace: "), "got: {out}");
        assert!(out.contains("report: "), "got: {out}");
        assert!(out.contains("spans (simulated time):"), "got: {out}");

        // Both artifacts parse; the trace has events, the report carries
        // the schema stamp and per-level records.
        let trace = json::parse(&std::fs::read_to_string(&trace_path).expect("trace file"))
            .expect("trace parses");
        let events = trace
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents");
        assert!(!events.is_empty());

        let report = json::parse(&std::fs::read_to_string(&report_path).expect("report file"))
            .expect("report parses");
        assert_eq!(
            report.get("schema_version").and_then(JsonValue::as_u64),
            Some(1)
        );
        let levels = report
            .get("levels")
            .and_then(JsonValue::as_arr)
            .expect("levels");
        assert!(!levels.is_empty(), "per-level records must be present");
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let o = parse_options(
            &["--checkpoint-dir", "/tmp/ck", "--checkpoint-every", "3"].map(String::from),
        )
        .expect("parses");
        let ckpt = o.checkpoint.expect("checkpoint options");
        assert_eq!(ckpt.dir, std::path::PathBuf::from("/tmp/ck"));
        assert_eq!(ckpt.every, 3);
        assert!(!ckpt.resume);

        let o = parse_options(&["--checkpoint-dir", "/tmp/ck", "--resume"].map(String::from))
            .expect("parses");
        assert!(o.checkpoint.expect("checkpoint options").resume);

        // Satellite guardrails: every bad combination is a typed usage
        // error, never a panic or a silent ignore.
        for bad in [
            vec!["--resume"],
            vec!["--checkpoint-every", "4"],
            vec!["--checkpoint-dir", "/tmp/ck", "--checkpoint-every", "0"],
            vec!["--checkpoint-dir", "/tmp/ck", "--checkpoint-every", "wat"],
            vec!["--checkpoint-dir"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(parse_options(&args), Err(CliError::Usage(_))),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn crash_then_resume_from_the_command_line() {
        let path = tmp("crashy.mtx");
        run_str(&["gen", "circuit", "300", "5", &path]).expect("gen");
        let dir = tmp("crashy-ckpt");
        let _ = std::fs::remove_dir_all(&dir);

        // First run is killed at an injected crash point mid-factorization.
        let err = run_str(&[
            "factorize",
            &path,
            "--checkpoint-dir",
            &dir,
            "--checkpoint-every",
            "2",
            "--fault-plan",
            "crash:at=5",
        ])
        .unwrap_err();
        assert!(
            matches!(err, CliError::Pipeline(GpluError::Crashed { ordinal: 5 })),
            "got {err}"
        );

        // A snapshot survived the crash...
        let snapshots = std::fs::read_dir(&dir).expect("checkpoint dir").count();
        assert!(snapshots > 0, "no snapshots written before the crash");

        // ...and the rerun resumes from it and completes.
        let out = run_str(&[
            "factorize",
            &path,
            "--checkpoint-dir",
            &dir,
            "--checkpoint-every",
            "2",
            "--resume",
        ])
        .expect("resume completes");
        assert!(out.contains("total simulated time"), "got: {out}");
        assert!(out.contains("checkpoints: "), "got: {out}");

        // Resuming against a different matrix is a typed mismatch.
        let other = tmp("crashy-other.mtx");
        run_str(&["gen", "circuit", "310", "5", &other]).expect("gen");
        let err =
            run_str(&["factorize", &other, "--checkpoint-dir", &dir, "--resume"]).unwrap_err();
        assert!(
            matches!(err, CliError::Pipeline(GpluError::CheckpointMismatch(_))),
            "got {err}"
        );
    }

    #[test]
    fn repair_singular_flag_parses() {
        let o = parse_options(&["--repair-singular".to_string()]).expect("parses");
        assert!(o.lu.preprocess.repair_singular);
    }

    #[test]
    fn corrupt_matrix_file_is_a_typed_error() {
        let path = tmp("nan.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 nan\n",
        )
        .expect("write");
        let err = run_str(&["info", &path]).unwrap_err();
        assert!(
            matches!(
                err,
                CliError::Sparse(SparseError::NonFiniteValue { row: 1, col: 1 })
            ),
            "got {err}"
        );
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        assert!(matches!(
            parse_options(&["--engine".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_options(&["--format".into(), "csc".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["wat".into()], &mut Vec::new()),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["--help"]).expect("help");
        assert!(out.contains("factorize"));
        assert!(out.contains("--ordering"));
    }
}
