//! `telemetry_check` — CI validator for the run's durable artifacts.
//!
//! ```text
//! telemetry_check <report.json> [trace.json]
//! telemetry_check --manifest <checkpoint-dir>
//! telemetry_check --service <service-report.json> [trace.json]
//! telemetry_check --slo [--min-disk-hit-rate X] <service-report.json> [trace.json]
//! ```
//!
//! Checks that a `--report-json` file is schema-versioned, internally
//! consistent (the phase totals add up), and carries per-level records,
//! and that a `--trace-out` file is a balanced, time-ordered Chrome
//! trace. With `--manifest`, validates a `--checkpoint-dir` instead:
//! the manifest parses, every listed snapshot exists with the advertised
//! size and whole-file hash, every snapshot passes its own structural
//! checks, and the latest-valid-wins load succeeds. With `--service`,
//! validates a `gplu serve --stress --service-report` file: schema
//! version, all sections present, job totals consistent, hit rate in
//! range, percentiles ordered — plus, for schema v2, that the
//! observability sections (metrics registry, SLO verdict, drift table)
//! are structurally sound when present. `--slo` is the CI gate: all the
//! `--service` checks, and additionally the report MUST carry the
//! observability sections, the SLO verdict must be `pass`, and no
//! cost-model span kind may be drift-flagged. Schema v3 adds the tiered
//! cache sections (`/cache/host`, `/cache/disk`) and the `warm_host` /
//! `warm_disk` / `load_shed` job counters; `--min-disk-hit-rate X`
//! additionally gates the restart rescue rate — the fraction of
//! pattern-building jobs served from the host/disk tiers instead of a
//! cold symbolic pass — which a rewarmed same-workload rerun should
//! drive close to 1.0. Schema v4 adds the `fleet` section (per-device
//! job/queue/hit-rate accounting from the multi-device scheduler),
//! validated for ordinal coverage and hit-rate sanity; run reports from
//! `--devices` runs carry an analogous optional `fleet` object whose
//! per-device timings and death list are checked against the device
//! count.
//!
//! Every failure message names the first failing location as a JSON
//! pointer (`/latency/sim_p95_ns`), and the caller prefixes the file
//! path — so CI logs point straight at the offending field.

use gplu_checkpoint::{xxh64, CheckpointStore, Snapshot};
use gplu_trace::{json, JsonValue, MetricsRegistry};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("telemetry_check: {msg}");
    ExitCode::FAILURE
}

/// Walks a JSON pointer (object keys and array indices, `/a/b/0/c`).
fn lookup<'a>(doc: &'a JsonValue, ptr: &str) -> Option<&'a JsonValue> {
    ptr.split('/')
        .filter(|s| !s.is_empty())
        .try_fold(doc, |d, key| match d {
            JsonValue::Arr(items) => key.parse::<usize>().ok().and_then(|i| items.get(i)),
            _ => d.get(key),
        })
}

/// A required numeric field, failure message = its JSON pointer.
fn num_at(doc: &JsonValue, ptr: &str) -> Result<f64, String> {
    lookup(doc, ptr)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{ptr}: missing or not a number"))
}

/// A required section, failure message = its JSON pointer.
fn section_at<'a>(doc: &'a JsonValue, ptr: &str) -> Result<&'a JsonValue, String> {
    lookup(doc, ptr).ok_or_else(|| format!("{ptr}: section missing"))
}

fn check_report(doc: &JsonValue) -> Result<String, String> {
    let version = num_at(doc, "/schema_version")? as u64;
    if !(1..=2).contains(&version) {
        return Err(format!("/schema_version: unknown version {version}"));
    }

    let total = num_at(doc, "/phases/total_ns")?;
    let sum = num_at(doc, "/phases/preprocess_ns")?
        + num_at(doc, "/phases/symbolic_ns")?
        + num_at(doc, "/phases/levelize_ns")?
        + num_at(doc, "/phases/numeric_ns")?;
    if (total - sum).abs() > 1e-9 {
        return Err(format!(
            "/phases/total_ns: {total} != phase sum {sum} (diff {})",
            (total - sum).abs()
        ));
    }

    let levels = section_at(doc, "/levels")?
        .as_arr()
        .ok_or("/levels: not an array")?;
    if levels.is_empty() {
        return Err("/levels: no per-level records".into());
    }
    let mut gemm_tile_sum = 0.0f64;
    for (i, l) in levels.iter().enumerate() {
        for key in ["level", "width", "duration_ns"] {
            if l.get(key).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("/levels/{i}/{key}: missing or not a number"));
            }
        }
        // Schema v2 blocked-engine counters are optional per level, but when
        // present they must be coherent: a level reporting blocks must carry
        // a mean width of at least one column.
        if let Some(blocks) = l.get("blocks").and_then(JsonValue::as_f64) {
            let mean = l.get("mean_block_width").and_then(JsonValue::as_f64);
            if blocks > 0.0 && mean.is_none_or(|w| w < 1.0) {
                return Err(format!(
                    "/levels/{i}/mean_block_width: {blocks} blocks but width {mean:?}"
                ));
            }
        }
        gemm_tile_sum += l
            .get("gemm_tiles")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
    }
    if version >= 2 {
        let total_tiles = num_at(doc, "/numeric/gemm_tiles")?;
        if gemm_tile_sum > total_tiles {
            return Err(format!(
                "/numeric/gemm_tiles: per-level sum {gemm_tile_sum} exceeds total {total_tiles}"
            ));
        }
    }

    for section in ["matrix", "symbolic", "schedule", "numeric", "fill", "gpu"] {
        section_at(doc, &format!("/{section}"))?;
    }

    // `--devices` runs attach a fleet object; when present it must be
    // internally consistent with its own device count.
    let mut fleet_note = String::new();
    if let Some(fleet) = doc.get("fleet") {
        let devices = num_at(fleet, "/devices").map_err(|e| format!("/fleet{e}"))? as u64;
        if devices == 0 {
            return Err("/fleet/devices: zero devices".into());
        }
        let per = section_at(fleet, "/per_device_ns")
            .map_err(|e| format!("/fleet{e}"))?
            .as_arr()
            .ok_or("/fleet/per_device_ns: not an array")?;
        if per.len() as u64 != devices {
            return Err(format!(
                "/fleet/per_device_ns: {} entries for {devices} devices",
                per.len()
            ));
        }
        let dead = section_at(fleet, "/dead")
            .map_err(|e| format!("/fleet{e}"))?
            .as_arr()
            .ok_or("/fleet/dead: not an array")?;
        for (i, d) in dead.iter().enumerate() {
            match d.as_f64() {
                Some(v) if (v as u64) < devices => {}
                _ => {
                    return Err(format!(
                        "/fleet/dead/{i}: not a device ordinal below {devices}"
                    ))
                }
            }
        }
        if dead.len() as u64 >= devices {
            return Err(format!(
                "/fleet/dead: all {devices} devices dead yet the run completed"
            ));
        }
        for key in [
            "resharded_rows",
            "resharded_cols",
            "exchanges",
            "exchange_bytes",
            "exchange_ns",
        ] {
            num_at(fleet, &format!("/{key}")).map_err(|e| format!("/fleet{e}"))?;
        }
        // Device deaths without resharded work would mean lost columns.
        if !dead.is_empty() {
            let resharded = num_at(fleet, "/resharded_rows")? + num_at(fleet, "/resharded_cols")?;
            if resharded == 0.0 {
                return Err("/fleet/resharded_cols: devices died but nothing resharded".into());
            }
        }
        fleet_note = format!(", fleet of {devices} ({} dead)", dead.len());
    }

    Ok(format!(
        "report ok: schema v{version}, total {total} ns, {} levels{fleet_note}",
        levels.len()
    ))
}

fn check_trace(doc: &JsonValue) -> Result<String, String> {
    let events = section_at(doc, "/traceEvents")?
        .as_arr()
        .ok_or("/traceEvents: not an array")?;
    if events.is_empty() {
        return Err("/traceEvents: no events".into());
    }

    let mut last_ts = f64::NEG_INFINITY;
    let mut open: Vec<&str> = Vec::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ts = e
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("/traceEvents/{i}/ts: missing"))?;
        if ts < last_ts {
            return Err(format!("/traceEvents/{i}/ts: decreases ({ts} < {last_ts})"));
        }
        last_ts = ts;
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("/traceEvents/{i}/name: missing"))?;
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("B") => open.push(name),
            Some("E") => {
                let j = open
                    .iter()
                    .rposition(|n| *n == name)
                    .ok_or_else(|| format!("/traceEvents/{i}/ph: unmatched E for '{name}'"))?;
                open.remove(j);
                spans += 1;
            }
            Some(_) => {}
            None => return Err(format!("/traceEvents/{i}/ph: missing")),
        }
    }
    if !open.is_empty() {
        return Err(format!(
            "/traceEvents: {} spans left open: {open:?}",
            open.len()
        ));
    }
    if spans == 0 {
        return Err("/traceEvents: no complete spans".into());
    }

    Ok(format!("trace ok: {} events, {spans} spans", events.len()))
}

/// Structural checks on the v2 observability sections, applied to
/// whichever of them are present.
fn check_observability_sections(doc: &JsonValue) -> Result<(), String> {
    if let Some(metrics) = doc.get("metrics") {
        MetricsRegistry::from_json(metrics).map_err(|e| format!("/metrics: {e}"))?;
    }
    if let Some(slo) = doc.get("slo") {
        let p50 = num_at(slo, "/sim_p50_ns").map_err(|e| format!("/slo{e}"))?;
        let p95 = num_at(slo, "/sim_p95_ns").map_err(|e| format!("/slo{e}"))?;
        let p99 = num_at(slo, "/sim_p99_ns").map_err(|e| format!("/slo{e}"))?;
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "/slo/sim_p95_ns: quantiles not ordered (p50 {p50}, p95 {p95}, p99 {p99})"
            ));
        }
        let rate = num_at(slo, "/hot_hit_rate").map_err(|e| format!("/slo{e}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("/slo/hot_hit_rate: {rate} outside 0..1"));
        }
        if lookup(slo, "/pass").and_then(JsonValue::as_bool).is_none() {
            return Err("/slo/pass: missing or not a bool".into());
        }
    }
    if let Some(drift) = doc.get("drift") {
        let kinds = section_at(drift, "/kinds")
            .map_err(|e| format!("/drift{e}"))?
            .as_arr()
            .ok_or("/drift/kinds: not an array")?;
        for (i, row) in kinds.iter().enumerate() {
            if row.get("kind").and_then(JsonValue::as_str).is_none() {
                return Err(format!("/drift/kinds/{i}/kind: missing"));
            }
            for key in [
                "samples",
                "predicted_ns",
                "observed_ns",
                "geomean_ratio",
                "drift",
            ] {
                num_at(row, &format!("/{key}")).map_err(|e| format!("/drift/kinds/{i}{e}"))?;
            }
            if row.get("flagged").and_then(JsonValue::as_bool).is_none() {
                return Err(format!("/drift/kinds/{i}/flagged: missing or not a bool"));
            }
        }
    }
    Ok(())
}

/// The fraction of pattern-building jobs rescued by the host/disk cache
/// tiers instead of paying a cold symbolic pass. Schema v3 only.
fn disk_rescue_rate(doc: &JsonValue) -> Result<f64, String> {
    let cold = num_at(doc, "/jobs/cold")?;
    let host = num_at(doc, "/jobs/warm_host")?;
    let disk = num_at(doc, "/jobs/warm_disk")?;
    Ok((host + disk) / (cold + host + disk).max(1.0))
}

fn check_service(doc: &JsonValue) -> Result<String, String> {
    let version = num_at(doc, "/service_schema_version")? as u64;
    if !(1..=4).contains(&version) {
        return Err(format!(
            "/service_schema_version: unknown version {version}"
        ));
    }

    for section in ["jobs", "cache", "latency", "queue", "faults", "robustness"] {
        section_at(doc, &format!("/{section}"))?;
    }

    let submitted = num_at(doc, "/jobs/submitted")?;
    let completed = num_at(doc, "/jobs/completed")?;
    let failed = num_at(doc, "/jobs/failed")?;
    let cancelled = num_at(doc, "/jobs/cancelled")?;
    let deadline = num_at(doc, "/jobs/deadline_dropped")?;
    let resolved = completed + failed + cancelled + deadline;
    if resolved > submitted {
        return Err(format!(
            "/jobs/submitted: {resolved} jobs resolved but only {submitted} submitted"
        ));
    }
    // v3 splits the warm tier by rescue provenance; older reports have
    // no host/disk tiers, so those counters default to zero.
    let mut by_tier = num_at(doc, "/jobs/cold")?
        + num_at(doc, "/jobs/warm")?
        + num_at(doc, "/jobs/cached_solve")?;
    if version >= 3 {
        by_tier += num_at(doc, "/jobs/warm_host")? + num_at(doc, "/jobs/warm_disk")?;
    }
    if (by_tier - completed).abs() > 1e-9 {
        return Err(format!(
            "/jobs/completed: tier counts sum to {by_tier}, not the {completed} completed jobs"
        ));
    }

    let rate = num_at(doc, "/cache/hot_hit_rate")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("/cache/hot_hit_rate: {rate} outside 0..1"));
    }
    let used = num_at(doc, "/cache/used_bytes")?;
    let budget = num_at(doc, "/cache/budget_bytes")?;
    if used > budget {
        return Err(format!(
            "/cache/used_bytes: {used} exceeds budget_bytes {budget}"
        ));
    }
    if version >= 3 {
        for section in ["cache/host", "cache/disk"] {
            section_at(doc, &format!("/{section}"))?;
        }
        let host_used = num_at(doc, "/cache/host/used_bytes")?;
        let host_budget = num_at(doc, "/cache/host/budget_bytes")?;
        if host_used > host_budget {
            return Err(format!(
                "/cache/host/used_bytes: {host_used} exceeds budget_bytes {host_budget}"
            ));
        }
        // A report claiming disk rescues must have the disk tier enabled.
        let disk_hits = num_at(doc, "/cache/disk/hits")?;
        let enabled = lookup(doc, "/cache/disk/enabled")
            .and_then(JsonValue::as_bool)
            .ok_or("/cache/disk/enabled: missing or not a bool")?;
        if disk_hits > 0.0 && !enabled {
            return Err(format!(
                "/cache/disk/hits: {disk_hits} hits reported with the disk tier disabled"
            ));
        }
        num_at(doc, "/jobs/load_shed")?;
    }

    for (p50, p95) in [
        ("/latency/sim_p50_ns", "/latency/sim_p95_ns"),
        ("/latency/wall_p50_ns", "/latency/wall_p95_ns"),
    ] {
        let lo = num_at(doc, p50)?;
        let hi = num_at(doc, p95)?;
        if lo > hi {
            return Err(format!("{p50}: {lo} exceeds {p95} {hi}"));
        }
    }

    let cap = num_at(doc, "/queue/capacity")?;
    let depth = num_at(doc, "/queue/max_depth")?;
    num_at(doc, "/queue/rejections")?;
    if depth > cap {
        return Err(format!("/queue/max_depth: {depth} exceeds capacity {cap}"));
    }

    num_at(doc, "/faults/injected")?;
    num_at(doc, "/faults/jobs_recovered")?;

    let gate_failures = num_at(doc, "/robustness/gate_failures")?;
    num_at(doc, "/robustness/quarantine_rejected")?;
    let quarantined = num_at(doc, "/robustness/quarantined_patterns")?;
    // Every quarantined pattern took at least one recorded strike, so the
    // counters can never invert.
    if quarantined > gate_failures {
        return Err(format!(
            "/robustness/quarantined_patterns: {quarantined} quarantined but only \
             {gate_failures} gate failures"
        ));
    }

    // v4 adds the fleet scheduler section: per-device placement and hit
    // accounting that must cover every worker-processed job exactly once.
    if version >= 4 {
        let fleet = section_at(doc, "/fleet")?;
        let devices = num_at(fleet, "/devices").map_err(|e| format!("/fleet{e}"))?;
        if devices < 1.0 {
            return Err("/fleet/devices: zero devices".into());
        }
        if lookup(fleet, "/degraded")
            .and_then(JsonValue::as_bool)
            .is_none()
        {
            return Err("/fleet/degraded: missing or not a bool".into());
        }
        let per = section_at(fleet, "/per_device")
            .map_err(|e| format!("/fleet{e}"))?
            .as_arr()
            .ok_or("/fleet/per_device: not an array")?;
        if per.len() as f64 != devices {
            return Err(format!(
                "/fleet/per_device: {} entries for {devices} devices",
                per.len()
            ));
        }
        let mut placed = 0.0f64;
        for (i, row) in per.iter().enumerate() {
            for key in [
                "device",
                "jobs",
                "queued",
                "hot_jobs",
                "hot_hits",
                "plan_bytes",
            ] {
                num_at(row, &format!("/{key}")).map_err(|e| format!("/fleet/per_device/{i}{e}"))?;
            }
            let device_rate =
                num_at(row, "/hot_hit_rate").map_err(|e| format!("/fleet/per_device/{i}{e}"))?;
            if !(0.0..=1.0).contains(&device_rate) {
                return Err(format!(
                    "/fleet/per_device/{i}/hot_hit_rate: {device_rate} outside 0..1"
                ));
            }
            let hits = num_at(row, "/hot_hits")?;
            let hot_jobs = num_at(row, "/hot_jobs")?;
            if hits > hot_jobs {
                return Err(format!(
                    "/fleet/per_device/{i}/hot_hits: {hits} exceeds hot_jobs {hot_jobs}"
                ));
            }
            if row.get("dead").and_then(JsonValue::as_bool).is_none() {
                return Err(format!("/fleet/per_device/{i}/dead: missing or not a bool"));
            }
            placed += num_at(row, "/jobs")?;
        }
        // A device can only finish jobs that were actually submitted.
        if placed > submitted {
            return Err(format!(
                "/fleet/per_device: devices finished {placed} jobs but only \
                 {submitted} were submitted"
            ));
        }
    }

    check_observability_sections(doc)?;

    Ok(format!(
        "service report ok: schema v{version}, {submitted} submitted, \
         {completed} completed, hot hit rate {rate:.3}"
    ))
}

/// The SLO/drift CI gate: all `--service` checks, plus the observability
/// sections are mandatory, the SLO verdict must pass, and no span kind
/// may be drift-flagged. With `min_disk_hit_rate`, the v3 tiered-cache
/// rescue rate is gated too (the persistence CI job's warm-restart floor).
fn check_slo(doc: &JsonValue, min_disk_hit_rate: Option<f64>) -> Result<String, String> {
    let base = check_service(doc)?;
    let version = num_at(doc, "/service_schema_version")? as u64;
    if version < 2 {
        return Err(format!(
            "/service_schema_version: --slo needs schema v2 observability sections, got v{version}"
        ));
    }
    for section in ["metrics", "tenants", "slo", "drift"] {
        section_at(doc, &format!("/{section}"))?;
    }
    let pass = lookup(doc, "/slo/pass")
        .and_then(JsonValue::as_bool)
        .ok_or("/slo/pass: missing or not a bool")?;
    if !pass {
        let first = lookup(doc, "/slo/violations/0")
            .and_then(JsonValue::as_str)
            .unwrap_or("unspecified violation");
        return Err(format!("/slo/pass: false ({first})"));
    }
    let kinds = lookup(doc, "/drift/kinds")
        .and_then(JsonValue::as_arr)
        .ok_or("/drift/kinds: not an array")?;
    for (i, row) in kinds.iter().enumerate() {
        if row.get("flagged") == Some(&JsonValue::Bool(true)) {
            let kind = row.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
            let drift = row.get("drift").and_then(JsonValue::as_f64).unwrap_or(0.0);
            return Err(format!(
                "/drift/kinds/{i}/flagged: cost model drifted {:.1}% on span kind `{kind}`",
                drift * 100.0
            ));
        }
    }
    let mut rescue_note = String::new();
    if let Some(floor) = min_disk_hit_rate {
        let version = num_at(doc, "/service_schema_version")? as u64;
        if version < 3 {
            return Err(format!(
                "/service_schema_version: --min-disk-hit-rate needs schema v3 cache tiers, \
                 got v{version}"
            ));
        }
        let rescue = disk_rescue_rate(doc)?;
        if rescue < floor {
            return Err(format!(
                "/jobs/warm_disk: tier rescue rate {rescue:.3} below the {floor:.3} floor \
                 (restart did not rewarm)"
            ));
        }
        rescue_note = format!(", tier rescue rate {rescue:.3} >= {floor:.3}");
    }
    let samples = num_at(doc, "/slo/samples")?;
    Ok(format!(
        "{base}; slo pass over {samples} windowed jobs, {} drift kinds in calibration{rescue_note}",
        kinds.len()
    ))
}

/// Validates a checkpoint directory: manifest ↔ files ↔ checksums ↔
/// structural snapshot decode, plus the latest-valid-wins load the
/// pipeline itself would perform on `--resume`.
fn check_manifest(dir: &str) -> Result<String, String> {
    let dir = std::path::Path::new(dir);
    let store = CheckpointStore::open(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let entries = store
        .read_manifest()
        .map_err(|e| format!("manifest: {e}"))?
        .ok_or("manifest: missing (no manifest.json in the directory)")?;
    if entries.is_empty() {
        return Err("manifest: empty (no snapshots listed)".into());
    }
    let mut last_seq = None;
    for e in &entries {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                return Err(format!(
                    "manifest: sequence numbers not strictly increasing ({prev} then {})",
                    e.seq
                ));
            }
        }
        last_seq = Some(e.seq);
        let path = dir.join(&e.file);
        let data = std::fs::read(&path).map_err(|err| format!("{}: {err}", path.display()))?;
        if data.len() as u64 != e.bytes {
            return Err(format!(
                "{}: size {} disagrees with manifest ({})",
                e.file,
                data.len(),
                e.bytes
            ));
        }
        let actual = xxh64(&data, 0);
        if actual != e.xxh64 {
            return Err(format!(
                "{}: whole-file hash {actual:016x} disagrees with manifest {:016x}",
                e.file, e.xxh64
            ));
        }
        Snapshot::from_bytes(&data).map_err(|err| format!("{}: {err}", e.file))?;
    }
    let (seq, snap) = store
        .load_latest()
        .map_err(|e| format!("load_latest: {e}"))?
        .ok_or("load_latest: no snapshot found despite a populated manifest")?;
    Ok(format!(
        "manifest ok: {} snapshot(s), latest seq {seq} ({} sections)",
        entries.len(),
        snap.section_ids().len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--manifest") {
        let Some(dir) = args.get(1) else {
            return fail("usage: telemetry_check --manifest <checkpoint-dir>");
        };
        return match check_manifest(dir) {
            Ok(msg) => {
                println!("{dir}: {msg}");
                ExitCode::SUCCESS
            }
            Err(msg) => fail(&format!("{dir}: {msg}")),
        };
    }
    if let Some(mode @ ("--service" | "--slo")) = args.first().map(String::as_str) {
        let mut rest = &args[1..];
        let mut min_disk_hit_rate = None;
        if rest.first().map(String::as_str) == Some("--min-disk-hit-rate") {
            let Some(raw) = rest.get(1) else {
                return fail("--min-disk-hit-rate needs a value in 0..1");
            };
            match raw.parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => min_disk_hit_rate = Some(v),
                _ => return fail(&format!("--min-disk-hit-rate: `{raw}` is not in 0..1")),
            }
            if mode != "--slo" {
                return fail("--min-disk-hit-rate is only valid with --slo");
            }
            rest = &rest[2..];
        }
        let service_check: Check = if mode == "--slo" {
            Box::new(move |doc| check_slo(doc, min_disk_hit_rate))
        } else {
            Box::new(check_service)
        };
        let Some(report_path) = rest.first() else {
            return fail(&format!(
                "usage: telemetry_check {mode} [--min-disk-hit-rate X] \
                 <service-report.json> [trace.json]"
            ));
        };
        let checks: Vec<(&String, Check)> = match rest.get(1) {
            Some(trace_path) => vec![
                (report_path, service_check),
                (trace_path, Box::new(check_trace)),
            ],
            None => vec![(report_path, service_check)],
        };
        return run_checks(checks);
    }
    let Some(report_path) = args.first() else {
        return fail(
            "usage: telemetry_check <report.json> [trace.json] | --manifest <dir> | \
             --service <service-report.json> [trace.json] | \
             --slo <service-report.json> [trace.json]",
        );
    };

    let checks: Vec<(&String, Check)> = match args.get(1) {
        Some(trace_path) => vec![
            (report_path, Box::new(check_report) as Check),
            (trace_path, Box::new(check_trace)),
        ],
        None => vec![(report_path, Box::new(check_report) as Check)],
    };
    run_checks(checks)
}

type Check = Box<dyn Fn(&JsonValue) -> Result<String, String>>;

fn run_checks(checks: Vec<(&String, Check)>) -> ExitCode {
    for (path, check) in checks {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => return fail(&format!("{path}: invalid JSON: {e}")),
        };
        match check(&doc) {
            Ok(msg) => println!("{path}: {msg}"),
            Err(msg) => return fail(&format!("{path}: {msg}")),
        }
    }
    ExitCode::SUCCESS
}
