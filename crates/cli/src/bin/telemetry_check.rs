//! `telemetry_check` — CI validator for the run's durable artifacts.
//!
//! ```text
//! telemetry_check <report.json> [trace.json]
//! telemetry_check --manifest <checkpoint-dir>
//! telemetry_check --service <service-report.json> [trace.json]
//! ```
//!
//! Checks that a `--report-json` file is schema-versioned, internally
//! consistent (the phase totals add up), and carries per-level records,
//! and that a `--trace-out` file is a balanced, time-ordered Chrome
//! trace. With `--manifest`, validates a `--checkpoint-dir` instead:
//! the manifest parses, every listed snapshot exists with the advertised
//! size and whole-file hash, every snapshot passes its own structural
//! checks, and the latest-valid-wins load succeeds. With `--service`,
//! validates a `gplu serve --stress --service-report` file: schema
//! version, all sections present, job totals consistent, hit rate in
//! range, percentiles ordered. Exits non-zero with a message on the
//! first violation.

use gplu_checkpoint::{xxh64, CheckpointStore, Snapshot};
use gplu_trace::{json, JsonValue};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("telemetry_check: {msg}");
    ExitCode::FAILURE
}

fn check_report(doc: &JsonValue) -> Result<String, String> {
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("report: schema_version missing")?;
    if !(1..=2).contains(&version) {
        return Err(format!("report: unknown schema_version {version}"));
    }

    let phases = doc.get("phases").ok_or("report: phases missing")?;
    let get = |key: &str| {
        phases
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("report: phases.{key} missing"))
    };
    let total = get("total_ns")?;
    let sum =
        get("preprocess_ns")? + get("symbolic_ns")? + get("levelize_ns")? + get("numeric_ns")?;
    if (total - sum).abs() > 1e-9 {
        return Err(format!(
            "report: total_ns {total} != phase sum {sum} (diff {})",
            (total - sum).abs()
        ));
    }

    let levels = doc
        .get("levels")
        .and_then(JsonValue::as_arr)
        .ok_or("report: levels missing")?;
    if levels.is_empty() {
        return Err("report: no per-level records".into());
    }
    let mut gemm_tile_sum = 0.0f64;
    for (i, l) in levels.iter().enumerate() {
        for key in ["level", "width", "duration_ns"] {
            if l.get(key).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("report: levels[{i}].{key} missing"));
            }
        }
        // Schema v2 blocked-engine counters are optional per level, but when
        // present they must be coherent: a level reporting blocks must carry
        // a mean width of at least one column.
        if let Some(blocks) = l.get("blocks").and_then(JsonValue::as_f64) {
            let mean = l.get("mean_block_width").and_then(JsonValue::as_f64);
            if blocks > 0.0 && mean.is_none_or(|w| w < 1.0) {
                return Err(format!(
                    "report: levels[{i}] reports {blocks} blocks but mean_block_width {mean:?}"
                ));
            }
        }
        gemm_tile_sum += l
            .get("gemm_tiles")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
    }
    if version >= 2 {
        let total_tiles = doc
            .get("numeric")
            .and_then(|n| n.get("gemm_tiles"))
            .and_then(JsonValue::as_f64)
            .ok_or("report: numeric.gemm_tiles missing (schema v2)")?;
        if gemm_tile_sum > total_tiles {
            return Err(format!(
                "report: per-level gemm_tiles sum {gemm_tile_sum} exceeds numeric total {total_tiles}"
            ));
        }
    }

    for section in ["matrix", "symbolic", "schedule", "numeric", "fill", "gpu"] {
        if doc.get(section).is_none() {
            return Err(format!("report: {section} section missing"));
        }
    }

    Ok(format!(
        "report ok: schema v{version}, total {total} ns, {} levels",
        levels.len()
    ))
}

fn check_trace(doc: &JsonValue) -> Result<String, String> {
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("trace: traceEvents missing")?;
    if events.is_empty() {
        return Err("trace: no events".into());
    }

    let mut last_ts = f64::NEG_INFINITY;
    let mut open: Vec<&str> = Vec::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ts = e
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("trace: events[{i}].ts missing"))?;
        if ts < last_ts {
            return Err(format!(
                "trace: ts decreases at event {i} ({ts} < {last_ts})"
            ));
        }
        last_ts = ts;
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("trace: events[{i}].name missing"))?;
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("B") => open.push(name),
            Some("E") => {
                let j = open
                    .iter()
                    .rposition(|n| *n == name)
                    .ok_or_else(|| format!("trace: unmatched E for '{name}' at event {i}"))?;
                open.remove(j);
                spans += 1;
            }
            Some(_) => {}
            None => return Err(format!("trace: events[{i}].ph missing")),
        }
    }
    if !open.is_empty() {
        return Err(format!("trace: {} spans left open: {open:?}", open.len()));
    }
    if spans == 0 {
        return Err("trace: no complete spans".into());
    }

    Ok(format!("trace ok: {} events, {spans} spans", events.len()))
}

fn check_service(doc: &JsonValue) -> Result<String, String> {
    let version = doc
        .get("service_schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("service report: service_schema_version missing")?;
    if version != 1 {
        return Err(format!(
            "service report: unknown service_schema_version {version}"
        ));
    }

    for section in ["jobs", "cache", "latency", "queue", "faults", "robustness"] {
        if doc.get(section).is_none() {
            return Err(format!("service report: {section} section missing"));
        }
    }

    let jobs = doc.get("jobs").unwrap();
    let field = |obj: &JsonValue, section: &str, key: &str| {
        obj.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("service report: {section}.{key} missing"))
    };
    let submitted = field(jobs, "jobs", "submitted")?;
    let completed = field(jobs, "jobs", "completed")?;
    let failed = field(jobs, "jobs", "failed")?;
    let cancelled = field(jobs, "jobs", "cancelled")?;
    let deadline = field(jobs, "jobs", "deadline_dropped")?;
    let resolved = completed + failed + cancelled + deadline;
    if resolved > submitted {
        return Err(format!(
            "service report: {resolved} jobs resolved but only {submitted} submitted"
        ));
    }
    let by_tier = field(jobs, "jobs", "cold")?
        + field(jobs, "jobs", "warm")?
        + field(jobs, "jobs", "cached_solve")?;
    if (by_tier - completed).abs() > 1e-9 {
        return Err(format!(
            "service report: tier counts sum to {by_tier}, not the {completed} completed jobs"
        ));
    }

    let cache = doc.get("cache").unwrap();
    let rate = field(cache, "cache", "hot_hit_rate")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("service report: hot_hit_rate {rate} outside 0..1"));
    }
    let used = field(cache, "cache", "used_bytes")?;
    let budget = field(cache, "cache", "budget_bytes")?;
    if used > budget {
        return Err(format!(
            "service report: cache used_bytes {used} exceeds budget_bytes {budget}"
        ));
    }

    let latency = doc.get("latency").unwrap();
    for (p50, p95) in [("sim_p50_ns", "sim_p95_ns"), ("wall_p50_ns", "wall_p95_ns")] {
        let lo = field(latency, "latency", p50)?;
        let hi = field(latency, "latency", p95)?;
        if lo > hi {
            return Err(format!(
                "service report: latency.{p50} {lo} exceeds {p95} {hi}"
            ));
        }
    }

    let queue = doc.get("queue").unwrap();
    let cap = field(queue, "queue", "capacity")?;
    let depth = field(queue, "queue", "max_depth")?;
    field(queue, "queue", "rejections")?;
    if depth > cap {
        return Err(format!(
            "service report: queue max_depth {depth} exceeds capacity {cap}"
        ));
    }

    let faults = doc.get("faults").unwrap();
    field(faults, "faults", "injected")?;
    field(faults, "faults", "jobs_recovered")?;

    let rob = doc.get("robustness").unwrap();
    let gate_failures = field(rob, "robustness", "gate_failures")?;
    field(rob, "robustness", "quarantine_rejected")?;
    let quarantined = field(rob, "robustness", "quarantined_patterns")?;
    // Every quarantined pattern took at least one recorded strike, so the
    // counters can never invert.
    if quarantined > gate_failures {
        return Err(format!(
            "service report: {quarantined} quarantined patterns but only \
             {gate_failures} gate failures"
        ));
    }

    Ok(format!(
        "service report ok: schema v{version}, {submitted} submitted, \
         {completed} completed, hot hit rate {rate:.3}"
    ))
}

/// Validates a checkpoint directory: manifest ↔ files ↔ checksums ↔
/// structural snapshot decode, plus the latest-valid-wins load the
/// pipeline itself would perform on `--resume`.
fn check_manifest(dir: &str) -> Result<String, String> {
    let dir = std::path::Path::new(dir);
    let store = CheckpointStore::open(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let entries = store
        .read_manifest()
        .map_err(|e| format!("manifest: {e}"))?
        .ok_or("manifest: missing (no manifest.json in the directory)")?;
    if entries.is_empty() {
        return Err("manifest: empty (no snapshots listed)".into());
    }
    let mut last_seq = None;
    for e in &entries {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                return Err(format!(
                    "manifest: sequence numbers not strictly increasing ({prev} then {})",
                    e.seq
                ));
            }
        }
        last_seq = Some(e.seq);
        let path = dir.join(&e.file);
        let data = std::fs::read(&path).map_err(|err| format!("{}: {err}", path.display()))?;
        if data.len() as u64 != e.bytes {
            return Err(format!(
                "{}: size {} disagrees with manifest ({})",
                e.file,
                data.len(),
                e.bytes
            ));
        }
        let actual = xxh64(&data, 0);
        if actual != e.xxh64 {
            return Err(format!(
                "{}: whole-file hash {actual:016x} disagrees with manifest {:016x}",
                e.file, e.xxh64
            ));
        }
        Snapshot::from_bytes(&data).map_err(|err| format!("{}: {err}", e.file))?;
    }
    let (seq, snap) = store
        .load_latest()
        .map_err(|e| format!("load_latest: {e}"))?
        .ok_or("load_latest: no snapshot found despite a populated manifest")?;
    Ok(format!(
        "manifest ok: {} snapshot(s), latest seq {seq} ({} sections)",
        entries.len(),
        snap.section_ids().len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--manifest") {
        let Some(dir) = args.get(1) else {
            return fail("usage: telemetry_check --manifest <checkpoint-dir>");
        };
        return match check_manifest(dir) {
            Ok(msg) => {
                println!("{dir}: {msg}");
                ExitCode::SUCCESS
            }
            Err(msg) => fail(&format!("{dir}: {msg}")),
        };
    }
    if args.first().map(String::as_str) == Some("--service") {
        let Some(report_path) = args.get(1) else {
            return fail("usage: telemetry_check --service <service-report.json> [trace.json]");
        };
        let checks: Vec<(&String, Check)> = match args.get(2) {
            Some(trace_path) => vec![(report_path, check_service), (trace_path, check_trace)],
            None => vec![(report_path, check_service)],
        };
        return run_checks(checks);
    }
    let Some(report_path) = args.first() else {
        return fail(
            "usage: telemetry_check <report.json> [trace.json] | --manifest <dir> | \
             --service <service-report.json> [trace.json]",
        );
    };

    let checks: Vec<(&String, Check)> = match args.get(1) {
        Some(trace_path) => vec![(report_path, check_report), (trace_path, check_trace)],
        None => vec![(report_path, check_report)],
    };
    run_checks(checks)
}

type Check = fn(&JsonValue) -> Result<String, String>;

fn run_checks(checks: Vec<(&String, Check)>) -> ExitCode {
    for (path, check) in checks {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => return fail(&format!("{path}: invalid JSON: {e}")),
        };
        match check(&doc) {
            Ok(msg) => println!("{path}: {msg}"),
            Err(msg) => return fail(&format!("{path}: {msg}")),
        }
    }
    ExitCode::SUCCESS
}
