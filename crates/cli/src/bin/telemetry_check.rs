//! `telemetry_check` — CI validator for the run's durable artifacts.
//!
//! ```text
//! telemetry_check <report.json> [trace.json]
//! telemetry_check --manifest <checkpoint-dir>
//! ```
//!
//! Checks that a `--report-json` file is schema-versioned, internally
//! consistent (the phase totals add up), and carries per-level records,
//! and that a `--trace-out` file is a balanced, time-ordered Chrome
//! trace. With `--manifest`, validates a `--checkpoint-dir` instead:
//! the manifest parses, every listed snapshot exists with the advertised
//! size and whole-file hash, every snapshot passes its own structural
//! checks, and the latest-valid-wins load succeeds. Exits non-zero with
//! a message on the first violation.

use gplu_checkpoint::{xxh64, CheckpointStore, Snapshot};
use gplu_trace::{json, JsonValue};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("telemetry_check: {msg}");
    ExitCode::FAILURE
}

fn check_report(doc: &JsonValue) -> Result<String, String> {
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("report: schema_version missing")?;
    if version != 1 {
        return Err(format!("report: unknown schema_version {version}"));
    }

    let phases = doc.get("phases").ok_or("report: phases missing")?;
    let get = |key: &str| {
        phases
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("report: phases.{key} missing"))
    };
    let total = get("total_ns")?;
    let sum =
        get("preprocess_ns")? + get("symbolic_ns")? + get("levelize_ns")? + get("numeric_ns")?;
    if (total - sum).abs() > 1e-9 {
        return Err(format!(
            "report: total_ns {total} != phase sum {sum} (diff {})",
            (total - sum).abs()
        ));
    }

    let levels = doc
        .get("levels")
        .and_then(JsonValue::as_arr)
        .ok_or("report: levels missing")?;
    if levels.is_empty() {
        return Err("report: no per-level records".into());
    }
    for (i, l) in levels.iter().enumerate() {
        for key in ["level", "width", "duration_ns"] {
            if l.get(key).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("report: levels[{i}].{key} missing"));
            }
        }
    }

    for section in ["matrix", "symbolic", "schedule", "numeric", "fill", "gpu"] {
        if doc.get(section).is_none() {
            return Err(format!("report: {section} section missing"));
        }
    }

    Ok(format!(
        "report ok: schema v{version}, total {total} ns, {} levels",
        levels.len()
    ))
}

fn check_trace(doc: &JsonValue) -> Result<String, String> {
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("trace: traceEvents missing")?;
    if events.is_empty() {
        return Err("trace: no events".into());
    }

    let mut last_ts = f64::NEG_INFINITY;
    let mut open: Vec<&str> = Vec::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ts = e
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("trace: events[{i}].ts missing"))?;
        if ts < last_ts {
            return Err(format!(
                "trace: ts decreases at event {i} ({ts} < {last_ts})"
            ));
        }
        last_ts = ts;
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("trace: events[{i}].name missing"))?;
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("B") => open.push(name),
            Some("E") => {
                let j = open
                    .iter()
                    .rposition(|n| *n == name)
                    .ok_or_else(|| format!("trace: unmatched E for '{name}' at event {i}"))?;
                open.remove(j);
                spans += 1;
            }
            Some(_) => {}
            None => return Err(format!("trace: events[{i}].ph missing")),
        }
    }
    if !open.is_empty() {
        return Err(format!("trace: {} spans left open: {open:?}", open.len()));
    }
    if spans == 0 {
        return Err("trace: no complete spans".into());
    }

    Ok(format!("trace ok: {} events, {spans} spans", events.len()))
}

/// Validates a checkpoint directory: manifest ↔ files ↔ checksums ↔
/// structural snapshot decode, plus the latest-valid-wins load the
/// pipeline itself would perform on `--resume`.
fn check_manifest(dir: &str) -> Result<String, String> {
    let dir = std::path::Path::new(dir);
    let store = CheckpointStore::open(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let entries = store
        .read_manifest()
        .map_err(|e| format!("manifest: {e}"))?
        .ok_or("manifest: missing (no manifest.json in the directory)")?;
    if entries.is_empty() {
        return Err("manifest: empty (no snapshots listed)".into());
    }
    let mut last_seq = None;
    for e in &entries {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                return Err(format!(
                    "manifest: sequence numbers not strictly increasing ({prev} then {})",
                    e.seq
                ));
            }
        }
        last_seq = Some(e.seq);
        let path = dir.join(&e.file);
        let data = std::fs::read(&path).map_err(|err| format!("{}: {err}", path.display()))?;
        if data.len() as u64 != e.bytes {
            return Err(format!(
                "{}: size {} disagrees with manifest ({})",
                e.file,
                data.len(),
                e.bytes
            ));
        }
        let actual = xxh64(&data, 0);
        if actual != e.xxh64 {
            return Err(format!(
                "{}: whole-file hash {actual:016x} disagrees with manifest {:016x}",
                e.file, e.xxh64
            ));
        }
        Snapshot::from_bytes(&data).map_err(|err| format!("{}: {err}", e.file))?;
    }
    let (seq, snap) = store
        .load_latest()
        .map_err(|e| format!("load_latest: {e}"))?
        .ok_or("load_latest: no snapshot found despite a populated manifest")?;
    Ok(format!(
        "manifest ok: {} snapshot(s), latest seq {seq} ({} sections)",
        entries.len(),
        snap.section_ids().len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--manifest") {
        let Some(dir) = args.get(1) else {
            return fail("usage: telemetry_check --manifest <checkpoint-dir>");
        };
        return match check_manifest(dir) {
            Ok(msg) => {
                println!("{dir}: {msg}");
                ExitCode::SUCCESS
            }
            Err(msg) => fail(&format!("{dir}: {msg}")),
        };
    }
    let Some(report_path) = args.first() else {
        return fail("usage: telemetry_check <report.json> [trace.json] | --manifest <dir>");
    };

    type Check = fn(&JsonValue) -> Result<String, String>;
    let checks: Vec<(&String, Check)> = match args.get(1) {
        Some(trace_path) => vec![(report_path, check_report), (trace_path, check_trace)],
        None => vec![(report_path, check_report)],
    };

    for (path, check) in checks {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => return fail(&format!("{path}: invalid JSON: {e}")),
        };
        match check(&doc) {
            Ok(msg) => println!("{path}: {msg}"),
            Err(msg) => return fail(&format!("{path}: {msg}")),
        }
    }
    ExitCode::SUCCESS
}
