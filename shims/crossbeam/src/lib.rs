//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the one type this workspace uses: [`queue::SegQueue`], an
//! unbounded MPMC queue. The real crate is lock-free; this stand-in uses
//! a mutexed `VecDeque`, which preserves the API and FIFO semantics (the
//! workspace uses it for work distribution, not for lock-free latency).

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes an element to the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pops the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// True when no elements are queued.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_producers_drain_fully() {
            let q = std::sync::Arc::new(SegQueue::new());
            std::thread::scope(|s| {
                for t in 0..4 {
                    let q = q.clone();
                    s.spawn(move || {
                        for i in 0..100 {
                            q.push(t * 100 + i);
                        }
                    });
                }
            });
            let mut seen = 0;
            while q.pop().is_some() {
                seen += 1;
            }
            assert_eq!(seen, 400);
        }
    }
}
