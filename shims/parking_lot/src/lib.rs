//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API surface it actually uses: [`Mutex`] and
//! [`RwLock`] with `parking_lot` semantics (no lock poisoning — a
//! panicked holder simply releases the lock). Backed by `std::sync`.

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a
    /// poisoned lock (panicked holder) is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader–writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
