//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the harness subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Statistics are intentionally simple: each benchmark runs a short warmup,
//! then `sample_size` timed iterations, and reports min / mean / max
//! wall-clock per iteration to stdout. There is no outlier analysis, HTML
//! report, or baseline comparison — the serious measurements in this repo
//! go through the `bench` crate's own binaries, which write JSON.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle, passed to every bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// Identifier for one benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `{function}/{parameter}`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target: self.sample_size,
        };
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Closes the group (report lines were already printed per bench).
    pub fn finish(self) {}
}

/// Timing loop handle given to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine` once per sample after a single warmup call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples recorded");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {group}/{id}: mean {} [min {}, max {}] over {} samples",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a function that runs the listed bench functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(5);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // one warmup + five timed samples
        assert_eq!(calls, 6);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("cpu", "HT20").id, "cpu/HT20");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
