//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the property-testing subset its suites use: the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros, range and tuple
//! strategies, [`Just`], `prop_flat_map` / `prop_perturb`, and
//! [`collection::vec`].
//!
//! Differences from real proptest, deliberate for an offline CI:
//! - **No shrinking.** A failing case reports its inputs' case index; the
//!   run is deterministic, so re-running reproduces it exactly.
//! - **Deterministic seeding.** Case `i` of every test uses the same RNG
//!   stream on every run and platform.

/// Test-runner plumbing: configuration, RNG, and failure type.
pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th input of a property run.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0xB5AD_4ECE_DA1C_E2A9 ^ ((case as u64 + 1) << 1),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Bounded draw in `[0, span)`; span must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0, "empty sample span");
            self.next_u64() % span
        }

        /// An independent RNG split off this one (consumed by
        /// `prop_perturb` closures, which take the RNG by value).
        pub fn fork(&mut self) -> TestRng {
            TestRng {
                state: self.next_u64() | 1,
            }
        }
    }

    /// A property-case failure raised by `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Transforms each generated value with access to fresh randomness.
    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> U,
    {
        Perturb { base: self, f }
    }

    /// Transforms each generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let seed = self.base.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> Strategy for Perturb<B, F>
where
    B: Strategy,
    F: Fn(B::Value, TestRng) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        let value = self.base.generate(rng);
        (self.f)(value, rng.fork())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategies!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` draws with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(strategy, len_range)`, as in real proptest.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything user code imports with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Strategy};
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// docs
///     #[test]
///     fn name(x in strategy, (a, b) in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $p = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let _: () = $body;
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__failure) = __outcome {
                        panic!(
                            "property {} failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __failure
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 3usize..17,
            x in 0.5f64..2.5,
            s in 0u64..9,
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!(s < 9);
        }

        #[test]
        fn tuple_pattern_binds((a, b) in (1usize..5, 1usize..5)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn flat_map_chains_dependent_sizes(
            v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0u32..10, n..n + 1)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn perturb_hands_out_usable_rng(
            x in Just(7u64).prop_perturb(|seven, mut rng| seven + rng.next_u64() % 3),
        ) {
            prop_assert!((7..10).contains(&x));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        assert_eq!(
            crate::Strategy::generate(&strat, &mut a),
            crate::Strategy::generate(&strat, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(n in 0usize..10) {
                let _ = n;
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
