//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of `rand` its generators use: `StdRng::seed_from_u64`, the
//! [`Rng`] extension methods `gen`, `gen_range` (half-open and inclusive
//! integer ranges, half-open float ranges) and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms and runs, which is all the experiment suite requires
//! (it never asserts on concrete streams, only same-seed reproducibility).

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from an RNG (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range values can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer draw (modulo bias is irrelevant
/// at the workspace's range sizes vs 2^64).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sample range");
    rng.next_u64() % span
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Extension methods over [`RngCore`] — the user-facing sampling API.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as _StdRngReexportGuard; // keeps rustc from pruning the module in docs

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(42).gen();
        let b: u64 = StdRng::seed_from_u64(42).gen();
        let c: u64 = StdRng::seed_from_u64(43).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "got {hits} of 10k at p=0.3");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_draws_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
