//! Offline stand-in for the `rayon` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the parallel-iterator subset it uses: `into_par_iter` over ranges,
//! `par_chunks` over slices, and the `map` / `flat_map_iter` / `for_each`
//! / `collect` adapters, plus [`current_num_threads`].
//!
//! Execution model: adapters are eager. Each adapter splits its items into
//! one contiguous chunk per available core and runs them on scoped threads,
//! then reassembles results **in input order** — the ordering guarantee the
//! gpu simulator relies on when it zips block results back to block ids.
//! Panics in worker closures propagate to the caller, as in real rayon.

use std::num::NonZeroUsize;

/// Number of worker threads the pool would use (here: the machine's
/// available parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items` on scoped threads, preserving input order in the
/// output. The closure is shared by reference, so it must be `Sync`.
fn run_parallel<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = current_num_threads().min(n);
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            // Re-raise worker panics on the calling thread, like rayon.
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// An eager "parallel iterator": the realized item list plus adapters that
/// fan work out across threads.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel element-wise transform, order-preserving.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: run_parallel(self.items, f),
        }
    }

    /// Parallel transform where each element yields a sequential iterator;
    /// results are concatenated in input order.
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = run_parallel(self.items, |t| f(t).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_parallel(self.items, f);
    }

    /// Collects the realized items (already in input order).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Realizes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel chunking over slices (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Splits the slice into `size`-element chunks (last may be short) and
    /// yields them as a parallel iterator.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// The traits user code imports with `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_slice_in_order() {
        let data: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = data.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), data.iter().sum());
        assert_eq!(sums[0], (0..10).sum());
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let out: Vec<usize> = (0..10usize)
            .into_par_iter()
            .flat_map_iter(|i| vec![i; i])
            .collect();
        let expect: Vec<usize> = (0..10).flat_map(|i| vec![i; i]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn for_each_visits_every_item() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        (0..500usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 500);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 33 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }
}
