//! Every implementation of every phase must agree exactly: the paper's
//! engineering claim is that the GPU versions compute *the same
//! factorization* as the CPU baselines, just faster. These tests pin that
//! across the whole matrix (pun intended) of engines.

use gplu::baseline::{factorize_glu30, factorize_um_pipeline};
use gplu::prelude::*;
use gplu::sparse::gen::random::random_dominant;
use gplu::sparse::gen::suite::paper_suite;

fn gpu_for(a: &gplu::sparse::Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

#[test]
fn all_four_symbolic_engines_agree_bitwise() {
    let a = random_dominant(350, 4.0, 314);
    let mut factors = Vec::new();
    for engine in [
        SymbolicEngine::Ooc,
        SymbolicEngine::OocDynamic,
        SymbolicEngine::UmNoPrefetch,
        SymbolicEngine::UmPrefetch,
    ] {
        let opts = LuOptions {
            symbolic: engine,
            ..Default::default()
        };
        let f = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("pipeline");
        factors.push((engine, f.lu));
    }
    let (ref_engine, reference) = &factors[0];
    for (engine, lu) in &factors[1..] {
        assert_eq!(
            &reference.vals, &lu.vals,
            "{engine:?} disagrees with {ref_engine:?}"
        );
        assert_eq!(reference.col_ptr, lu.col_ptr, "{engine:?}: pattern differs");
    }
}

#[test]
fn baselines_agree_with_pipeline() {
    let a = random_dominant(300, 4.0, 315);
    let ours = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
    let glu = factorize_glu30(&gpu_for(&a), &a, &gplu::core::PreprocessOptions::default())
        .expect("glu30");
    let um = factorize_um_pipeline(&gpu_for(&a), &a, true, &LuOptions::default()).expect("um");
    assert_eq!(ours.lu.vals, glu.lu.vals, "GLU 3.0 baseline differs");
    assert_eq!(ours.lu.vals, um.lu.vals, "UM pipeline differs");
}

#[test]
fn engines_agree_on_paper_analogs() {
    // A cheap sweep over a few Table 2 analogs at a deep scale.
    for abbr in ["G7", "OT2", "MI"] {
        let entry = paper_suite()
            .into_iter()
            .find(|e| e.abbr == abbr)
            .expect("known");
        let a = entry.generate(8192);
        let ours =
            LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
        let glu = factorize_glu30(&gpu_for(&a), &a, &gplu::core::PreprocessOptions::default())
            .expect("glu30");
        assert_eq!(ours.lu.vals, glu.lu.vals, "{abbr}: baseline disagrees");
    }
}

#[test]
fn determinism_across_runs() {
    let a = random_dominant(250, 4.0, 316);
    let f1 = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("run 1");
    let f2 = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("run 2");
    assert_eq!(f1.lu.vals, f2.lu.vals);
    assert_eq!(f1.report.fill_nnz, f2.report.fill_nnz);
    assert_eq!(f1.report.n_levels, f2.report.n_levels);
    // Simulated times are part of the contract too (deterministic model).
    assert!((f1.report.total().as_ns() - f2.report.total().as_ns()).abs() < 1e-6);
}
