//! End-to-end telemetry contract: every numeric format and a
//! fault-injected recovery run must produce (a) a JSON run report whose
//! phase totals match the in-process [`PhaseReport`] exactly and which
//! parses back through the hand-rolled parser, and (b) a Chrome trace
//! with non-decreasing timestamps and balanced B/E events.

use gplu_core::{LuFactorization, LuOptions, NumericFormat, RunReport, SymbolicEngine};
use gplu_sim::{CostModel, FaultPlan, Gpu, GpuConfig};
use gplu_sparse::gen::random::random_dominant;
use gplu_sparse::Csr;
use gplu_trace::{chrome_trace, json, JsonValue, Recorder, TraceEvent};

fn gpu_for(a: &Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

fn traced_run(gpu: &Gpu, a: &Csr, opts: &LuOptions) -> (LuFactorization, Vec<TraceEvent>) {
    let recorder = Recorder::new();
    let f = LuFactorization::compute_traced(gpu, a, opts, &recorder).expect("pipeline ok");
    (f, recorder.into_events())
}

/// The acceptance contract: report totals equal `PhaseReport::total()` to
/// 1e-9 ns, per-level records exist, and the trace is ordered and
/// balanced.
fn check_artifacts(f: &LuFactorization, events: &[TraceEvent], label: &str) {
    assert!(!events.is_empty(), "{label}: no events recorded");

    // --- JSON report round-trip.
    let run = RunReport::new(
        f.preprocessed.n_rows(),
        f.preprocessed.nnz(),
        f.report.clone(),
        events,
    );
    let text = run.to_json_string();
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("{label}: report reparse: {e}"));

    let phases = doc.get("phases").expect("phases section");
    let total_json = phases
        .get("total_ns")
        .and_then(JsonValue::as_f64)
        .expect("total_ns");
    assert!(
        (total_json - f.report.total().as_ns()).abs() <= 1e-9,
        "{label}: report total {total_json} != PhaseReport::total() {}",
        f.report.total().as_ns()
    );
    let sum: f64 = ["preprocess_ns", "symbolic_ns", "levelize_ns", "numeric_ns"]
        .iter()
        .map(|k| phases.get(k).and_then(JsonValue::as_f64).expect("phase"))
        .sum();
    assert!(
        (total_json - sum).abs() <= 1e-9,
        "{label}: phase sum {sum} != total {total_json}"
    );

    let levels = doc
        .get("levels")
        .and_then(JsonValue::as_arr)
        .expect("levels array");
    assert_eq!(
        levels.len(),
        f.report.n_levels,
        "{label}: one record per schedule level"
    );

    // --- Chrome trace: ordered and balanced.
    let trace = chrome_trace(events);
    let doc = json::parse(&trace).unwrap_or_else(|e| panic!("{label}: trace reparse: {e}"));
    let list = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents");
    assert!(!list.is_empty(), "{label}: empty trace");

    let mut last_ts = f64::NEG_INFINITY;
    let mut open: Vec<&str> = Vec::new();
    for (i, e) in list.iter().enumerate() {
        let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts");
        assert!(
            ts >= last_ts,
            "{label}: ts decreases at event {i}: {ts} < {last_ts}"
        );
        last_ts = ts;
        let name = e.get("name").and_then(JsonValue::as_str).expect("name");
        match e.get("ph").and_then(JsonValue::as_str).expect("ph") {
            "B" => open.push(name),
            "E" => {
                let j = open
                    .iter()
                    .rposition(|n| *n == name)
                    .unwrap_or_else(|| panic!("{label}: unmatched E '{name}' at {i}"));
                open.remove(j);
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "{label}: spans left open: {open:?}");
}

#[test]
fn all_numeric_formats_produce_valid_artifacts() {
    let a = random_dominant(250, 4.0, 310);
    for format in [
        NumericFormat::Auto,
        NumericFormat::Dense,
        NumericFormat::Sparse,
        NumericFormat::SparseMerge,
    ] {
        let opts = LuOptions {
            format,
            ..Default::default()
        };
        let gpu = gpu_for(&a);
        let (f, events) = traced_run(&gpu, &a, &opts);
        check_artifacts(&f, &events, &format!("{format:?}"));
    }
}

#[test]
fn fault_injected_run_produces_valid_artifacts_and_recovery_instants() {
    let a = random_dominant(200, 4.0, 311);
    let opts = LuOptions {
        symbolic: SymbolicEngine::Ooc,
        ..Default::default()
    };
    // Ordinal 3 is the symbolic state chunk: the engine backs off its
    // chunk size and recovers.
    let gpu = Gpu::with_fault_plan(
        GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
        CostModel::default(),
        FaultPlan::new().oom_on_alloc(3),
    );
    let (f, events) = traced_run(&gpu, &a, &opts);
    assert!(
        !f.report.recovery.is_empty(),
        "fault plan must trigger recovery"
    );
    check_artifacts(&f, &events, "faulted");

    // Every recovery action appears as a `recovery` instant with both
    // attributes populated.
    let instants: Vec<&TraceEvent> = events.iter().filter(|e| e.name == "recovery").collect();
    assert_eq!(
        instants.len(),
        f.report.recovery.len(),
        "one instant per recovery action"
    );
    for i in &instants {
        assert!(i.attr("phase").is_some() && i.attr("action").is_some());
    }
}

#[test]
fn phase_spans_cover_the_whole_run() {
    let a = random_dominant(200, 4.0, 312);
    let gpu = gpu_for(&a);
    let (f, events) = traced_run(&gpu, &a, &LuOptions::default());

    for phase in [
        "phase.preprocess",
        "phase.symbolic",
        "phase.levelize",
        "phase.numeric",
    ] {
        let begins = events
            .iter()
            .filter(|e| e.name == phase && e.kind == gplu_trace::EventKind::Begin)
            .count();
        let ends = events
            .iter()
            .filter(|e| e.name == phase && e.kind == gplu_trace::EventKind::End)
            .count();
        assert_eq!((begins, ends), (1, 1), "{phase} span must appear once");
    }

    // The per-phase snapshot deltas are populated: the symbolic phase ran
    // kernels, and the phase stats' clock deltas sum to the report total.
    let stats = &f.report.phase_stats;
    assert!(stats.symbolic.kernels_host + stats.symbolic.kernels_device > 0);
    let stats_total =
        stats.preprocess.now + stats.symbolic.now + stats.levelize.now + stats.numeric.now;
    assert!(
        (stats_total.as_ns() - f.report.total().as_ns()).abs() <= 1e-6,
        "phase snapshot clocks {} must cover the report total {}",
        stats_total,
        f.report.total()
    );
}
