//! Hard-traffic chaos suite: the adversarial corpus from
//! [`gplu::sparse::gen::hard`] driven through the full pipeline under the
//! pivoting policies.
//!
//! The robustness contract is that every job terminates in **exactly one**
//! of three states — and never in a fourth, silent-wrong-answer state:
//!
//! 1. **gate pass** — `Ok`, and the returned factors independently
//!    reproduce the residual the acceptance gate saw (re-verified here
//!    from scratch against the preprocessed system);
//! 2. **recovered** — `Ok` with a non-empty recovery log (pivot repairs /
//!    perturbations / escalations), and the factors *still* verify;
//! 3. **typed rejection** — a [`GpluError::NumericallySingular`],
//!    [`GpluError::SingularPivot`], or structural sparse error; never a
//!    panic, never a device/crash error dressed up as a numeric one.
//!
//! Every case is deterministic: inputs derive from the case index, and
//! `GPLU_CHAOS_SEED` (the CI seed matrix) offsets the matrix seeds so each
//! CI shard explores a different slice of the corpus.

use gplu::core::DEFAULT_PIVOT_TAU;
use gplu::prelude::*;
use gplu::sparse::gen::hard::HardKind;
use gplu::sparse::gen::random::random_dominant;
use gplu::sparse::verify::{check_solution, residual_probe};
use proptest::prelude::*;

/// Seed offset from `GPLU_CHAOS_SEED` (default 0), so CI shards explore
/// disjoint corpus slices without code changes.
fn seed_base() -> u64 {
    std::env::var("GPLU_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn gpu_for(a: &gplu::sparse::Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

/// Both sides of the acceptance criterion: no pivoting (the GLU-family
/// assumption) and threshold pivoting at the default tau.
const POLICIES: [PivotPolicy; 2] = [
    PivotPolicy::NoPivot,
    PivotPolicy::Threshold {
        tau: DEFAULT_PIVOT_TAU,
    },
];

/// Classifies an outcome against the three-state contract, panicking on
/// anything outside it. Returns the state for distribution assertions.
fn assert_contract(result: Result<LuFactorization, GpluError>, ctx: &str) -> &'static str {
    match result {
        Ok(f) => {
            // Accepted factors must verify from scratch — this is the
            // "zero silent wrong answers" half of the contract. The gate
            // ran with its default 2 probes; re-running the same
            // deterministic probe reproduces the number it gated on.
            let r = residual_probe(&f.preprocessed, &f.lu, 2);
            assert!(
                r <= ResidualGate::default().threshold,
                "{ctx}: accepted factors re-verify at residual {r:.3e}"
            );
            if let Some(gated) = f.report.residual {
                assert!(
                    (gated - r).abs() <= 1e-12 * r.max(1.0),
                    "{ctx}: reported residual {gated:.3e} != re-probed {r:.3e}"
                );
            }
            if f.report.recovery.is_empty() {
                "gate-pass"
            } else {
                "recovered"
            }
        }
        Err(
            e @ (GpluError::NumericallySingular { .. }
            | GpluError::SingularPivot { .. }
            | GpluError::Sparse(_)),
        ) => {
            assert!(!e.to_string().is_empty());
            "rejected"
        }
        Err(other) => panic!("{ctx}: outside the three-state contract: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // 256 cases x 2 policies = 512 seeded schedules per shard.
    #[test]
    fn hard_corpus_terminates_in_one_of_three_states(
        kind_idx in 0usize..4,
        n in 40usize..140,
        mseed in 0u64..10_000,
    ) {
        let kind = HardKind::ALL[kind_idx];
        let a = kind.generate(n, mseed.wrapping_add(seed_base().wrapping_mul(1_000_003)));
        for policy in POLICIES {
            let opts = LuOptions::default().with_pivot(policy);
            let ctx = format!("{} n={n} seed={mseed} policy={policy:?}", kind.name());
            let state =
                assert_contract(LuFactorization::compute(&gpu_for(&a), &a, &opts), &ctx);
            prop_assert!(
                ["gate-pass", "recovered", "rejected"].contains(&state),
                "unknown state {state}"
            );
        }
    }

    // The escalation ladder turns NoPivot rejections into recoveries (or
    // keeps them typed) — it must never invent a fourth state either.
    #[test]
    fn escalation_ladder_stays_inside_the_contract(
        kind_idx in 0usize..4,
        n in 40usize..120,
        mseed in 0u64..10_000,
    ) {
        let kind = HardKind::ALL[kind_idx];
        let a = kind.generate(n, mseed.wrapping_add(seed_base().wrapping_mul(1_000_003)));
        let mut opts = LuOptions::default();
        opts.gate.escalate = true;
        let ctx = format!("{} n={n} seed={mseed} escalating", kind.name());
        match LuFactorization::compute(&gpu_for(&a), &a, &opts) {
            Ok(f) => {
                let r = residual_probe(&f.preprocessed, &f.lu, 2);
                prop_assert!(
                    r <= opts.gate.threshold,
                    "{}: ladder-accepted factors re-verify at {r:.3e}", ctx
                );
            }
            Err(e @ (GpluError::NumericallySingular { .. }
                | GpluError::SingularPivot { .. }
                | GpluError::Sparse(_))) => {
                // The ladder climbed before giving up: the typed rejection
                // reports how many rungs were tried.
                if let GpluError::NumericallySingular { attempts, .. } = e {
                    prop_assert!(attempts >= 1, "{}: zero attempts reported", ctx);
                }
            }
            Err(other) => prop_assert!(false, "{}: untyped failure {other}", ctx),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Satellite: a RefactorPlan captured under threshold pivoting replays
    // bit-identically on same-pattern values, and stays correct under
    // uniform value drift (threshold comparisons are scale-invariant, so
    // the captured row order cannot go stale).
    #[test]
    fn threshold_plans_replay_bit_identically_and_survive_uniform_drift(
        n in 60usize..140,
        mseed in 0u64..10_000,
        scale_k in 1u32..9,
    ) {
        let a = random_dominant(n, 4.0, mseed.wrapping_add(seed_base()));
        let opts = LuOptions::default().with_pivot(PivotPolicy::Threshold {
            tau: DEFAULT_PIVOT_TAU,
        });
        let cold = LuFactorization::compute(&gpu_for(&a), &a, &opts)
            .expect("dominant cold run succeeds");
        let plan = cold.refactor_plan(&a, &opts).expect("plan");

        // Same values: the warm path must reproduce the cold factors bit
        // for bit (same kernels, same schedule, same pivot order).
        let warm = plan.refactorize(&gpu_for(&a), &a).expect("replay");
        prop_assert_eq!(&warm.lu.vals, &cold.lu.vals, "replay drifted");
        prop_assert_eq!(&warm.lu.col_ptr, &cold.lu.col_ptr, "pattern drifted");

        // Uniform scaling preserves every tau comparison, so the captured
        // order stays valid and the warm factors still solve the system.
        let c = 10f64.powi(scale_k as i32 - 4);
        let mut b = a.clone();
        for v in &mut b.vals {
            *v *= c;
        }
        let warm = plan.refactorize(&gpu_for(&b), &b).expect("scaled replay");
        let x_true = vec![1.0; n];
        let rhs = b.spmv(&x_true);
        let x = warm.solve(&rhs).expect("solve");
        prop_assert!(
            check_solution(&b, &x, &rhs, 1e-6),
            "scaled replay produced a wrong solution (c={c})"
        );
    }
}

/// All five numeric formats produce bit-identical factors under each
/// pivoting policy on the hard corpus — the engines share one kernel
/// core, so robustness features cannot fork their answers.
#[test]
fn all_five_formats_agree_bitwise_under_each_policy_on_hard_traffic() {
    const FORMATS: [NumericFormat; 5] = [
        NumericFormat::Auto,
        NumericFormat::Dense,
        NumericFormat::Sparse,
        NumericFormat::SparseMerge,
        NumericFormat::SparseBlocked,
    ];
    let policies = [
        PivotPolicy::NoPivot,
        PivotPolicy::Static { threshold: 1e-8 },
        PivotPolicy::Threshold {
            tau: DEFAULT_PIVOT_TAU,
        },
    ];
    for kind in HardKind::ALL {
        let a = kind.generate(120, 31 + seed_base());
        for policy in policies {
            let mut results = Vec::new();
            for format in FORMATS {
                let opts = LuOptions {
                    format,
                    ..LuOptions::default().with_pivot(policy)
                };
                results.push((format, LuFactorization::compute(&gpu_for(&a), &a, &opts)));
            }
            let (ref_fmt, reference) = &results[0];
            for (format, r) in &results[1..] {
                match (reference, r) {
                    (Ok(want), Ok(got)) => {
                        assert_eq!(
                            &want.lu.vals,
                            &got.lu.vals,
                            "{}: {format:?} disagrees with {ref_fmt:?} under {policy:?}",
                            kind.name()
                        );
                        assert_eq!(
                            want.lu.col_ptr,
                            got.lu.col_ptr,
                            "{}: {format:?} pattern differs under {policy:?}",
                            kind.name()
                        );
                    }
                    (Err(want), Err(got)) => assert_eq!(
                        std::mem::discriminant(want),
                        std::mem::discriminant(got),
                        "{}: {format:?} fails differently ({got}) than {ref_fmt:?} ({want})",
                        kind.name()
                    ),
                    (want, got) => panic!(
                        "{}: {format:?} and {ref_fmt:?} split Ok/Err under {policy:?}: \
                         {:?} vs {:?}",
                        kind.name(),
                        want.as_ref().map(|_| "ok").map_err(|e| e.to_string()),
                        got.as_ref().map(|_| "ok").map_err(|e| e.to_string()),
                    ),
                }
            }
        }
    }
}
