//! Solver + I/O integration: Matrix Market round trips feeding the
//! pipeline, permutation bookkeeping, and the Table 4 diagonal-repair
//! path.

use gplu::prelude::*;
use gplu::sparse::convert::coo_to_csr;
use gplu::sparse::gen::planar::{planar, PlanarParams};
use gplu::sparse::gen::random::random_dominant;
use gplu::sparse::io::{read_matrix_market, write_matrix_market};
use gplu::sparse::verify::check_solution;
use gplu::sparse::Coo;

fn gpu_for(a: &gplu::sparse::Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

#[test]
fn matrix_market_round_trip_then_factorize() {
    let a = random_dominant(150, 4.0, 9);
    // Serialize to Matrix Market, read back, factorize the copy.
    let mut coo = Coo::new(150, 150);
    for i in 0..150 {
        for (j, v) in a.row_iter(i) {
            coo.push(i, j, v);
        }
    }
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &coo).expect("write");
    let read = coo_to_csr(&read_matrix_market(&buf[..]).expect("read"));
    assert_eq!(a, read, "round trip must be lossless");

    let f =
        LuFactorization::compute(&gpu_for(&read), &read, &LuOptions::default()).expect("pipeline");
    let b = read.spmv(&vec![2.0; 150]);
    let x = f.solve(&b).expect("solve");
    assert!(check_solution(&read, &x, &b, 1e-8));
}

#[test]
fn rank_deficient_planar_is_repaired_and_factored() {
    // The Table 4 path: missing diagonals repaired with 1000.
    let a = planar(&PlanarParams {
        side: 24,
        tri_prob: 0.4,
        missing_diag_fraction: 0.4,
        seed: 12,
    });
    assert!(!a.has_full_diagonal(), "fixture must be deficient");
    let f = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
    assert!(f.report.repaired_diagonals > 0);
    // The factors solve the *repaired* system exactly.
    let b = f.preprocessed.spmv(&vec![1.0; a.n_rows()]);
    let y = gplu::sparse::triangular::solve_lu(&f.lu, &b).expect("solve repaired");
    let residual: f64 = f
        .preprocessed
        .spmv(&y)
        .iter()
        .zip(&b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max);
    assert!(
        residual < 1e-8 * 1000.0,
        "repaired-system residual {residual}"
    );
}

#[test]
fn static_pivot_handles_permuted_diagonal() {
    // An anti-diagonal-dominant system: without static pivoting the
    // diagonal is structurally empty.
    let n = 60;
    let mut coo = Coo::new(n, n);
    let mut rng = 1u64;
    for i in 0..n {
        coo.push(i, n - 1 - i, 10.0);
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (rng >> 33) as usize % n;
        if j != n - 1 - i {
            coo.push(i, j, 0.5);
        }
    }
    let a = coo_to_csr(&coo);
    let opts = LuOptions {
        preprocess: gplu::core::PreprocessOptions {
            static_pivot: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let f = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("pipeline");
    assert_eq!(
        f.report.repaired_diagonals, 0,
        "matching should avoid value repair"
    );
    let x_true = vec![1.0; n];
    let b = a.spmv(&x_true);
    let x = f.solve(&b).expect("solve");
    assert!(check_solution(&a, &x, &b, 1e-8));
}

#[test]
fn permutations_are_invertible_bookkeeping() {
    let a = random_dominant(80, 4.0, 33);
    let f = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
    // p_row . p_row^{-1} = id, and the preprocessed matrix really is the
    // permutation of A.
    let inv = f.p_row.inverse();
    for i in 0..80 {
        assert_eq!(inv.apply(f.p_row.apply(i)), i);
    }
    for i in 0..80 {
        for (j, v) in a.row_iter(i) {
            assert_eq!(
                f.preprocessed.get(f.p_row.apply(i), f.p_col.apply(j)),
                Some(v),
                "entry ({i},{j}) lost in permutation"
            );
        }
    }
}
