//! The paper's qualitative results, as executable assertions. Each test
//! pins one "who wins" relationship from the evaluation section; the
//! quantitative bands live in EXPERIMENTS.md and the `gplu-bench`
//! binaries.

use gplu::baseline::factorize_glu30;
use gplu::prelude::*;
use gplu::sparse::gen::suite::paper_suite;
use gplu::symbolic::{symbolic_ooc, symbolic_um, UmMode};

const TEST_SCALE: usize = 1024;

fn prepared(abbr: &str) -> (gplu::sparse::Csr, Gpu, Gpu, Gpu) {
    let entry = paper_suite()
        .into_iter()
        .find(|e| e.abbr == abbr)
        .expect("known abbr");
    let a = entry.generate(TEST_SCALE);
    let mk = || {
        let cfg = GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz());
        let cost = CostModel::default()
            .scaled_latencies(TEST_SCALE)
            .with_um_page_bytes(2 * 1024 * 1024 / TEST_SCALE as u64);
        Gpu::with_cost(cfg, cost)
    };
    (a.clone(), mk(), mk(), mk())
}

/// Figure 4: the end-to-end GPU pipeline beats the modified GLU 3.0
/// baseline, and the gap comes from the symbolic phase.
#[test]
fn fig4_shape_ooc_beats_glu30() {
    for abbr in ["WI", "MI", "BB"] {
        let (a, g1, g2, _) = prepared(abbr);
        let ours = LuFactorization::compute(&g1, &a, &LuOptions::default()).expect("ours");
        let base =
            factorize_glu30(&g2, &a, &gplu::core::PreprocessOptions::default()).expect("baseline");
        assert!(
            ours.report.gpu_total() < base.report.gpu_total(),
            "{abbr}: ooc {} must beat GLU3.0 {}",
            ours.report.gpu_total(),
            base.report.gpu_total()
        );
        assert!(
            ours.report.symbolic < base.report.symbolic,
            "{abbr}: the win must come from symbolic"
        );
    }
}

/// Figure 4's correlation: denser matrices see larger symbolic speedups.
#[test]
fn fig4_shape_density_correlates_with_speedup() {
    let speedup = |abbr: &str| {
        let (a, g1, g2, _) = prepared(abbr);
        let ours = LuFactorization::compute(&g1, &a, &LuOptions::default()).expect("ours");
        let base =
            factorize_glu30(&g2, &a, &gplu::core::PreprocessOptions::default()).expect("baseline");
        base.report.symbolic.ratio(ours.report.symbolic)
    };
    let dense = speedup("WI"); // nnz/n ≈ 67 in the paper
    let sparse = speedup("OT2"); // nnz/n ≈ 6.3
    assert!(
        dense > sparse,
        "denser matrix must speed up more: WI {dense:.2} vs OT2 {sparse:.2}"
    );
}

/// Figures 5/6: out-of-core beats prefetched UM beats on-demand UM on the
/// symbolic phase.
#[test]
fn fig56_shape_ooc_beats_um_beats_no_prefetch() {
    for abbr in ["OT2", "GO"] {
        let (a, g1, g2, g3) = prepared(abbr);
        let pre = gplu::core::preprocess(&a, &gplu::core::PreprocessOptions::default(), g1.cost())
            .expect("preprocess");
        let ooc = symbolic_ooc(&g1, &pre.matrix).expect("ooc");
        let wp = symbolic_um(&g2, &pre.matrix, UmMode::Prefetch).expect("um wp");
        let wo = symbolic_um(&g3, &pre.matrix, UmMode::NoPrefetch).expect("um wo");
        assert!(
            ooc.time < wp.time,
            "{abbr}: ooc {} vs um+p {}",
            ooc.time,
            wp.time
        );
        assert!(
            wp.time < wo.time,
            "{abbr}: um+p {} vs um-p {}",
            wp.time,
            wo.time
        );
        assert!(
            wp.fault_groups < wo.fault_groups,
            "{abbr}: prefetch must cut faults"
        );
    }
}

/// Table 3: the out-of-core implementation spends a far smaller fraction
/// of its time on data movement than UM does servicing faults.
#[test]
fn table3_shape_fault_fractions() {
    let (a, g1, g2, _) = prepared("OT1");
    let pre = gplu::core::preprocess(&a, &gplu::core::PreprocessOptions::default(), g1.cost())
        .expect("preprocess");
    let ooc = symbolic_ooc(&g1, &pre.matrix).expect("ooc");
    let wo = symbolic_um(&g2, &pre.matrix, UmMode::NoPrefetch).expect("um");
    let ooc_frac = ooc.stats.xfer_time_fraction();
    let um_frac = wo.fault_time_fraction;
    assert!(
        um_frac > 5.0 * ooc_frac,
        "fault share {um_frac:.3} must dwarf explicit-transfer share {ooc_frac:.3}"
    );
}

/// Section 3.3: GPU levelization with dynamic parallelism beats the
/// serial CPU recurrence once the dependency graph carries real fill.
#[test]
fn levelization_shape_gpu_beats_cpu() {
    let (a, g1, _, _) = prepared("MI");
    let pre = gplu::core::preprocess(&a, &gplu::core::PreprocessOptions::default(), g1.cost())
        .expect("preprocess");
    let sym = gplu::symbolic::symbolic_cpu(&pre.matrix, g1.cost());
    let dep = gplu::schedule::DepGraph::build(&sym.result.filled);
    let cpu = gplu::schedule::levelize_cpu(&dep, g1.cost());
    let gpu_out = gplu::schedule::levelize_gpu(&g1, &dep).expect("gpu levelize");
    assert_eq!(cpu.levels.level_of, gpu_out.levels.level_of);
    assert!(
        gpu_out.time < cpu.time,
        "GPU topo sort {} must beat serial CPU {}",
        gpu_out.time,
        cpu.time
    );
}

/// Figure 3's premise: the frontier profile rises with the source-row id.
#[test]
fn fig3_shape_frontier_profile_rises() {
    let (a, g1, _, _) = prepared("PR");
    let pre = gplu::core::preprocess(&a, &gplu::core::PreprocessOptions::default(), g1.cost())
        .expect("preprocess");
    let profile = gplu::symbolic::frontier::frontier_profile(&pre.matrix);
    let buckets = gplu::symbolic::frontier::bucket_max(&profile, 8);
    let first_half: u64 = buckets[..4].iter().sum();
    let second_half: u64 = buckets[4..].iter().sum();
    assert!(
        second_half > 2 * first_half,
        "frontier mass must concentrate in late iterations: {buckets:?}"
    );
}
