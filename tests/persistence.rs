//! Persistence suite: the disk cache tier must make restarts *warm*
//! without ever making them *wrong*.
//!
//! The contract, in order of importance:
//!
//! 1. **bit-identity across restarts** — a job rescued from the host or
//!    disk tier produces factors bit-identical to a single-threaded cold
//!    run of the same `(pattern, values)` pair;
//! 2. **corruption costs time, never correctness** — corrupt, truncated
//!    and cross-version disk entries are rejected with an audit trail
//!    and the job falls back cold, bit-identical to a never-cached run;
//! 3. **crash consistency** — killing the service mid-stream loses only
//!    unflushed write-behind work; everything durable before the crash
//!    rewarm-rescues after it;
//! 4. **no symbolic work for previously-hot patterns** — a rewarmed
//!    service serves the old hot set without building a single plan.

use gplu::checkpoint::{section, PlanStore, Snapshot};
use gplu::core::pattern_fingerprint;
use gplu::prelude::*;
use gplu::server::{CacheCounters, ExecTier};
use gplu::sparse::gen::circuit::{circuit, CircuitParams};
use gplu::sparse::Csr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Self-cleaning scratch directory (mirrors the cache unit tests' idiom;
/// no external tempdir crate in the build environment).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "gplu-persistence-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir(path)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic value drift on a fixed pattern (the service workload's
/// perturbation shape).
fn drift(base: &Csr, version: u64) -> Csr {
    let mut m = base.clone();
    for (k, v) in m.vals.iter_mut().enumerate() {
        let wob = ((k as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(version.wrapping_mul(7919))
            % 97) as f64;
        *v *= 1.0 + wob / 1000.0;
    }
    m
}

fn hot_patterns(count: u64, seed: u64) -> Vec<Csr> {
    (0..count)
        .map(|s| {
            circuit(&CircuitParams {
                n: 220,
                nnz_per_row: 6.0,
                seed: seed + s,
                ..Default::default()
            })
        })
        .collect()
}

/// Single-threaded cold reference for one `(pattern, values)` pair.
fn cold_reference(a: &Csr) -> LuFactorization {
    let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
    LuFactorization::compute(&gpu, a, &LuOptions::default()).expect("cold reference")
}

fn persistent_config(dir: &TempDir, rewarm: bool) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        cache_dir: Some(dir.path().clone()),
        rewarm,
        ..Default::default()
    }
}

/// Runs one factorize job to completion, returning `(tier, lu values)`.
fn run_job(svc: &SolverService, a: Csr) -> (ExecTier, Vec<f64>) {
    let r = svc
        .submit(JobSpec::new(a, JobKind::Factorize).hot())
        .expect("submit")
        .wait()
        .expect("job completes");
    (r.tier, r.factorization.lu.vals.clone())
}

/// Populates the disk tier: one cold job per pattern, drained and
/// flushed so every plan is durable before the service goes away.
fn seed_disk_tier(dir: &TempDir, patterns: &[Csr]) -> CacheCounters {
    let svc = SolverService::start(persistent_config(dir, false));
    for base in patterns {
        let (tier, _) = run_job(&svc, drift(base, 0));
        assert_eq!(tier, ExecTier::Cold, "first sighting factorizes cold");
    }
    assert!(svc.drain(), "drain must flush the write-behind queue");
    let counters = svc.cache_counters();
    assert_eq!(
        counters.disk_writes,
        patterns.len() as u64,
        "every plan must be durable before shutdown"
    );
    svc.shutdown();
    counters
}

#[test]
fn warm_restart_serves_the_old_hot_set_without_symbolic_work() {
    let dir = TempDir::new("rewarm");
    let patterns = hot_patterns(3, 500);
    seed_disk_tier(&dir, &patterns);

    // Restart with --rewarm: the host tier is repopulated from disk
    // before the workers start.
    let svc = SolverService::start(persistent_config(&dir, true));
    assert_eq!(
        svc.cache_counters().rewarmed,
        patterns.len() as u64,
        "boot-time rewarm must reload every persisted plan"
    );
    assert_eq!(svc.cache().len(), 0, "rewarm fills the host tier");
    assert_eq!(svc.cache().host_len(), patterns.len());

    let mut tiers = Vec::new();
    for (pi, base) in patterns.iter().enumerate() {
        for version in [1u64, 2] {
            let a = drift(base, version);
            let (tier, vals) = run_job(&svc, a.clone());
            assert_ne!(
                tier,
                ExecTier::Cold,
                "pattern {pi} v{version}: previously-hot patterns must not re-run \
                 symbolic work after a rewarmed restart"
            );
            assert_eq!(
                cold_reference(&a).lu.vals,
                vals,
                "pattern {pi} v{version} served {tier:?}: rescued factors must be \
                 bit-identical to the cold pipeline"
            );
            tiers.push(tier);
        }
    }
    // First touch per pattern promotes out of the host tier; the second
    // version then hits the device tier.
    assert!(
        tiers.contains(&ExecTier::WarmHost),
        "rewarmed entries must serve from the host tier, got {tiers:?}"
    );
    assert!(tiers.contains(&ExecTier::Warm), "promotion must stick");
    assert_eq!(
        svc.stats().plans_built,
        0,
        "zero plans built: the whole hot set was rescued"
    );
    svc.shutdown();
}

#[test]
fn cold_restart_rescues_from_disk_on_demand() {
    let dir = TempDir::new("on-demand");
    let patterns = hot_patterns(1, 520);
    seed_disk_tier(&dir, &patterns);

    // No rewarm: both memory tiers start empty, so the first job's miss
    // walks down to the disk tier and decodes the persisted plan.
    let svc = SolverService::start(persistent_config(&dir, false));
    assert_eq!(svc.cache().len() + svc.cache().host_len(), 0);
    let a = drift(&patterns[0], 3);
    let (tier, vals) = run_job(&svc, a.clone());
    assert_eq!(tier, ExecTier::WarmDisk, "miss must be rescued from disk");
    assert_eq!(cold_reference(&a).lu.vals, vals);

    // The rescue promoted the plan to the device tier.
    let b = drift(&patterns[0], 4);
    let (tier, vals) = run_job(&svc, b.clone());
    assert_eq!(tier, ExecTier::Warm, "promoted entry must serve warm");
    assert_eq!(cold_reference(&b).lu.vals, vals);
    assert_eq!(svc.stats().plans_built, 0);
    svc.shutdown();
}

#[test]
fn corrupt_truncated_and_cross_version_entries_fall_back_cold() {
    let dir = TempDir::new("reject");
    let patterns = hot_patterns(3, 540);
    seed_disk_tier(&dir, &patterns);

    // Sabotage all three persisted entries, one failure mode each.
    let store = PlanStore::open(dir.path()).expect("reopen store");
    let fps: Vec<u64> = patterns.iter().map(pattern_fingerprint).collect();

    // (a) bit flip mid-file: the section checksum catches it.
    let path_a = dir.path().join(format!("plan-{:016x}.ckpt", fps[0]));
    let mut bytes = std::fs::read(&path_a).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path_a, &bytes).expect("write corrupted entry");

    // (b) truncation: the snapshot header declares more than is there.
    let path_b = dir.path().join(format!("plan-{:016x}.ckpt", fps[1]));
    let bytes = std::fs::read(&path_b).expect("read entry");
    std::fs::write(&path_b, &bytes[..bytes.len() / 2]).expect("truncate entry");

    // (c) cross-version: re-save with valid checksums but a bumped plan
    // schema version — only the codec's version guard can catch this.
    let snap = store
        .load(fps[2])
        .expect("load entry")
        .expect("entry exists");
    let mut meta = snap.section(section::PLAN_META).expect("meta").to_vec();
    meta[0] ^= 0xFF; // u32 LE version: 1 -> not-1
    let mut forged = Snapshot::new();
    forged.add_section(section::PLAN_META, meta);
    forged.add_section(
        section::PLAN_BODY,
        snap.section(section::PLAN_BODY).expect("body").to_vec(),
    );
    store.save(fps[2], &forged).expect("re-save forged entry");

    // Every job must fall back cold and stay bit-identical to a
    // never-cached run; the rejections leave an audit trail.
    let svc = SolverService::start(persistent_config(&dir, false));
    for (pi, base) in patterns.iter().enumerate() {
        let a = drift(base, 7);
        let (tier, vals) = run_job(&svc, a.clone());
        assert_eq!(
            tier,
            ExecTier::Cold,
            "pattern {pi}: a rejected disk entry must cost a cold rebuild"
        );
        assert_eq!(
            cold_reference(&a).lu.vals,
            vals,
            "pattern {pi}: cold fallback must be bit-identical to a never-cached run"
        );
    }
    let counters = svc.cache_counters();
    assert_eq!(
        counters.disk_rejects, 3,
        "all three sabotaged entries must be rejected"
    );
    assert_eq!(counters.disk_hits, 0);
    let log = svc.cache().rejects_log();
    assert_eq!(log.len(), 3, "every rejection must be recorded: {log:?}");
    assert!(
        !svc.cache().disk_down(),
        "per-entry corruption must not take the whole tier down"
    );
    svc.shutdown();
}

#[test]
fn crash_mid_stress_loses_only_unflushed_work() {
    let dir = TempDir::new("crash");
    let durable = hot_patterns(2, 560);
    let torn = hot_patterns(2, 580);

    // Phase 1: factorize the durable set and flush it, then crash the
    // disk tier and factorize more patterns — their write-behind work is
    // abandoned, exactly the torn state a mid-stress kill leaves behind.
    let svc = SolverService::start(persistent_config(&dir, false));
    for base in &durable {
        run_job(&svc, drift(base, 0));
    }
    assert!(svc.drain(), "durable set must be flushed");
    svc.cache().simulate_crash();
    for base in &torn {
        run_job(&svc, drift(base, 0));
    }
    drop(svc); // no graceful shutdown: pending persists never land

    // Phase 2: the restarted, rewarmed service rescues exactly the
    // durable set; the torn patterns rebuild cold — correctly.
    let svc = SolverService::start(persistent_config(&dir, true));
    assert_eq!(
        svc.cache_counters().rewarmed,
        durable.len() as u64,
        "only flushed entries survive the crash"
    );
    for (pi, base) in durable.iter().enumerate() {
        let a = drift(base, 5);
        let (tier, vals) = run_job(&svc, a.clone());
        assert_ne!(tier, ExecTier::Cold, "durable pattern {pi} must rescue");
        assert_eq!(cold_reference(&a).lu.vals, vals);
    }
    for (pi, base) in torn.iter().enumerate() {
        let a = drift(base, 5);
        let (tier, vals) = run_job(&svc, a.clone());
        assert_eq!(
            tier,
            ExecTier::Cold,
            "torn pattern {pi} was never durable; it must rebuild cold"
        );
        assert_eq!(cold_reference(&a).lu.vals, vals);
    }
    svc.shutdown();
}
