//! Property-based equivalence of the merge-join numeric kernel: across
//! random, mesh and circuit generators, the merge engine must produce
//! factors **bit-identical** to the sequential reference and to the
//! binary-search CSC engine (all three apply the same updates in the same
//! order — the disciplines differ only in how positions are located).

use gplu::numeric::{factorize_gpu_merge, factorize_gpu_sparse, factorize_seq};
use gplu::prelude::*;
use gplu::schedule::{levelize_cpu, DepGraph};
use gplu::sparse::convert::csr_to_csc;
use gplu::sparse::gen::{circuit, mesh, random};
use gplu::sparse::Csr;
use gplu::symbolic::symbolic_cpu;
use proptest::prelude::*;

/// Runs symbolic + levelization, then both GPU engines and the sequential
/// reference, asserting bitwise agreement of all three factors.
fn assert_merge_equivalent(a: &Csr, label: &str) -> Result<(), TestCaseError> {
    let sym = symbolic_cpu(a, &CostModel::default());
    let pattern = csr_to_csc(&sym.result.filled);
    let levels = levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;

    let mut seq = pattern.clone();
    factorize_seq(&mut seq).expect("sequential reference factorizes");

    let merge = factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
        .expect("merge engine ok");
    let bsearch = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
        .expect("binary-search engine ok");

    prop_assert_eq!(&merge.lu.vals, &seq.vals, "{}: merge != seq", label);
    prop_assert_eq!(
        &merge.lu.vals,
        &bsearch.lu.vals,
        "{}: merge != bsearch",
        label
    );
    prop_assert_eq!(merge.probes, 0, "{}: merge must not probe", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn merge_matches_seq_and_bsearch_on_random(
        n in 20usize..120,
        density in 2.0f64..6.0,
        seed in 0u64..500,
    ) {
        let a = random::random_dominant(n, density, seed);
        assert_merge_equivalent(&a, "random")?;
    }

    #[test]
    fn merge_matches_seq_and_bsearch_on_banded(
        n in 20usize..150,
        band in 2usize..8,
        seed in 0u64..500,
    ) {
        let a = random::banded_dominant(n, band, seed);
        assert_merge_equivalent(&a, "banded")?;
    }

    #[test]
    fn merge_matches_seq_and_bsearch_on_mesh(
        n in 25usize..120,
        density in 3.0f64..6.0,
        seed in 0u64..500,
    ) {
        let a = mesh::mesh(&mesh::MeshParams::for_target(n, density, seed));
        assert_merge_equivalent(&a, "mesh")?;
    }

    #[test]
    fn merge_matches_seq_and_bsearch_on_circuit(
        n in 30usize..150,
        nnz_per_row in 3.0f64..7.0,
        seed in 0u64..500,
    ) {
        let a = circuit::circuit(&circuit::CircuitParams {
            n,
            nnz_per_row,
            seed,
            ..Default::default()
        });
        assert_merge_equivalent(&a, "circuit")?;
    }
}

#[test]
fn merge_through_the_pipeline_is_bit_identical_too() {
    // End-to-end: the SparseMerge pipeline format against Sparse.
    let a = random::random_dominant(300, 4.0, 321);
    let gpu = || Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
    let merge = LuFactorization::compute(
        &gpu(),
        &a,
        &LuOptions {
            format: NumericFormat::SparseMerge,
            ..Default::default()
        },
    )
    .expect("merge pipeline ok");
    let bsearch = LuFactorization::compute(
        &gpu(),
        &a,
        &LuOptions {
            format: NumericFormat::Sparse,
            ..Default::default()
        },
    )
    .expect("bsearch pipeline ok");
    assert_eq!(merge.lu.vals, bsearch.lu.vals);
    assert!(merge.report.merge_steps > 0);
    assert!(bsearch.report.probes > 0);
}
