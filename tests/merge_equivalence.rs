//! Property-based equivalence of every numeric engine: across random,
//! banded, mesh and circuit generators, the merge-join, binary-search and
//! supernode-blocked engines must all produce factors **bit-identical**
//! to the sequential reference (every engine applies the same updates in
//! the same order — the disciplines differ only in how positions are
//! located and how the traffic is priced).

use gplu::numeric::{
    factorize_gpu_blocked, factorize_gpu_blocked_traced, factorize_gpu_merge, factorize_gpu_sparse,
    factorize_seq, BlockPlan, PivotCache, DEFAULT_BLOCK_THRESHOLD,
};
use gplu::prelude::*;
use gplu::schedule::{levelize_cpu, DepGraph};
use gplu::sparse::convert::csr_to_csc;
use gplu::sparse::gen::{circuit, mesh, random};
use gplu::sparse::Csr;
use gplu::symbolic::symbolic_cpu;
use gplu_trace::NOOP;
use proptest::prelude::*;

/// Runs symbolic + levelization, then every GPU engine and the sequential
/// reference, asserting bitwise agreement of all factors.
fn assert_engines_equivalent(a: &Csr, label: &str) -> Result<(), TestCaseError> {
    let sym = symbolic_cpu(a, &CostModel::default());
    let pattern = csr_to_csc(&sym.result.filled);
    let levels = levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;

    let mut seq = pattern.clone();
    factorize_seq(&mut seq).expect("sequential reference factorizes");

    let merge = factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
        .expect("merge engine ok");
    let bsearch = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
        .expect("binary-search engine ok");
    let blocked = factorize_gpu_blocked(
        &Gpu::new(GpuConfig::v100()),
        &pattern,
        &levels,
        DEFAULT_BLOCK_THRESHOLD,
    )
    .expect("blocked engine ok");

    prop_assert_eq!(&merge.lu.vals, &seq.vals, "{}: merge != seq", label);
    prop_assert_eq!(
        &merge.lu.vals,
        &bsearch.lu.vals,
        "{}: merge != bsearch",
        label
    );
    prop_assert_eq!(
        &merge.lu.vals,
        &blocked.lu.vals,
        "{}: merge != blocked",
        label
    );
    prop_assert_eq!(merge.probes, 0, "{}: merge must not probe", label);
    prop_assert_eq!(blocked.probes, 0, "{}: blocked must not probe", label);
    prop_assert_eq!(
        blocked.merge_steps,
        merge.merge_steps,
        "{}: blocked walks the same merge cursor",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engines_match_seq_on_random(
        n in 20usize..120,
        density in 2.0f64..6.0,
        seed in 0u64..500,
    ) {
        let a = random::random_dominant(n, density, seed);
        assert_engines_equivalent(&a, "random")?;
    }

    #[test]
    fn engines_match_seq_on_banded(
        n in 20usize..150,
        band in 2usize..8,
        seed in 0u64..500,
    ) {
        let a = random::banded_dominant(n, band, seed);
        assert_engines_equivalent(&a, "banded")?;
    }

    #[test]
    fn engines_match_seq_on_mesh(
        n in 25usize..120,
        density in 3.0f64..6.0,
        seed in 0u64..500,
    ) {
        let a = mesh::mesh(&mesh::MeshParams::for_target(n, density, seed));
        assert_engines_equivalent(&a, "mesh")?;
    }

    #[test]
    fn engines_match_seq_on_circuit(
        n in 30usize..150,
        nnz_per_row in 3.0f64..7.0,
        seed in 0u64..500,
    ) {
        let a = circuit::circuit(&circuit::CircuitParams {
            n,
            nnz_per_row,
            seed,
            ..Default::default()
        });
        assert_engines_equivalent(&a, "circuit")?;
    }
}

#[test]
fn merge_through_the_pipeline_is_bit_identical_too() {
    // End-to-end: the SparseMerge pipeline format against Sparse.
    let a = random::random_dominant(300, 4.0, 321);
    let gpu = || Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
    let merge = LuFactorization::compute(
        &gpu(),
        &a,
        &LuOptions {
            format: NumericFormat::SparseMerge,
            ..Default::default()
        },
    )
    .expect("merge pipeline ok");
    let bsearch = LuFactorization::compute(
        &gpu(),
        &a,
        &LuOptions {
            format: NumericFormat::Sparse,
            ..Default::default()
        },
    )
    .expect("bsearch pipeline ok");
    assert_eq!(merge.lu.vals, bsearch.lu.vals);
    assert!(merge.report.merge_steps > 0);
    assert!(bsearch.report.probes > 0);
}

#[test]
fn blocked_through_the_pipeline_is_bit_identical_too() {
    // End-to-end: the forced SparseBlocked pipeline format against
    // SparseMerge — bit-identical values, BLAS-3 tiles actually counted.
    let a = random::banded_dominant(300, 8, 77);
    let gpu = || Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
    let blocked = LuFactorization::compute(
        &gpu(),
        &a,
        &LuOptions {
            format: NumericFormat::SparseBlocked,
            ..Default::default()
        },
    )
    .expect("blocked pipeline ok");
    let merge = LuFactorization::compute(
        &gpu(),
        &a,
        &LuOptions {
            format: NumericFormat::SparseMerge,
            ..Default::default()
        },
    )
    .expect("merge pipeline ok");
    assert_eq!(blocked.lu.vals, merge.lu.vals);
    assert!(
        blocked.report.gemm_tiles > 0,
        "band-8 fill must form blocks"
    );
    assert_eq!(merge.report.gemm_tiles, 0);
}

#[test]
fn zero_blocks_degenerates_to_merge_exactly() {
    // A plan with no supernodes must reproduce the merge engine exactly:
    // same values, same cursor walk, same simulated time, no tiles.
    let a = random::random_dominant(150, 3.0, 9);
    let sym = symbolic_cpu(&a, &CostModel::default());
    let pattern = csr_to_csc(&sym.result.filled);
    let levels = levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;

    let cache = PivotCache::build(&pattern);
    // An unreachable threshold (Jaccard never exceeds 1) forces the
    // degenerate all-singleton plan.
    let plan = BlockPlan::detect(&pattern, &cache, 1.1);
    assert_eq!(plan.n_blocks(), 0);

    let blocked = factorize_gpu_blocked_traced(
        &Gpu::new(GpuConfig::v100()),
        &pattern,
        &levels,
        &plan,
        &NOOP,
    )
    .expect("blocked engine ok");
    let merge = factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
        .expect("merge engine ok");

    assert_eq!(blocked.lu.vals, merge.lu.vals);
    assert_eq!(blocked.merge_steps, merge.merge_steps);
    assert_eq!(blocked.gemm_tiles, 0);
    assert_eq!(blocked.time, merge.time);
}
