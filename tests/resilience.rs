//! Resilience suite: crash-consistent checkpoint/resume, proven by
//! killing the pipeline at **every** durability boundary.
//!
//! The invariant under test (the checkpoint subsystem's whole contract):
//!
//! 1. a clean checkpointed run is **bit-identical** to an uncheckpointed
//!    one — snapshotting never perturbs the answer;
//! 2. for every crash-point ordinal `k`, killing the run at `k`
//!    (`FaultPlan::crash_at`) and then resuming from the surviving
//!    snapshots reproduces the uninterrupted factors **bit-for-bit**,
//!    across all five numeric formats;
//! 3. corrupting every snapshot on disk turns resume into a typed
//!    [`GpluError::CheckpointCorrupt`] — never a panic, never a silently
//!    wrong answer;
//! 4. resuming against a different matrix is a typed
//!    [`GpluError::CheckpointMismatch`].
//!
//! Deterministic: matrices derive from a fixed seed offset by
//! `GPLU_RESILIENCE_SEED` (the CI seed matrix), so each CI shard explores
//! a different matrix while every failure reproduces locally by exporting
//! the same value.

use gplu::prelude::*;
use gplu::sim::FaultPlan;
use gplu::sparse::gen::random::random_dominant;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Matrix-seed offset from `GPLU_RESILIENCE_SEED` (default 0).
fn seed_base() -> u64 {
    std::env::var("GPLU_RESILIENCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Fresh scratch directory per call (no tempfile dependency).
fn ckpt_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gplu-resilience-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gpu_for(a: &gplu::sparse::Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

fn gpu_with_plan(a: &gplu::sparse::Csr, plan: FaultPlan) -> Gpu {
    Gpu::with_fault_plan(
        GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
        CostModel::default(),
        plan,
    )
}

fn assert_factors_equal(got: &LuFactorization, want: &LuFactorization, ctx: &str) {
    assert_eq!(
        got.lu.col_ptr, want.lu.col_ptr,
        "{ctx}: fill pattern (col_ptr) diverged"
    );
    assert_eq!(
        got.lu.row_idx, want.lu.row_idx,
        "{ctx}: fill pattern (row_idx) diverged"
    );
    assert_eq!(got.lu.vals, want.lu.vals, "{ctx}: values diverged bitwise");
}

const FORMATS: [(NumericFormat, &str); 5] = [
    (NumericFormat::Dense, "dense"),
    (NumericFormat::Sparse, "sparse"),
    (NumericFormat::SparseMerge, "merge"),
    (NumericFormat::SparseBlocked, "blocked"),
    (NumericFormat::Auto, "auto"),
];

/// The tentpole invariant: crash at every ordinal, resume, compare bits —
/// for each of the five numeric formats.
#[test]
fn crash_at_every_ordinal_then_resume_is_bit_identical() {
    let a = random_dominant(120, 4.0, 7 + seed_base());
    for (format, tag) in FORMATS {
        let opts = LuOptions {
            format,
            ..Default::default()
        };

        // Uncheckpointed reference.
        let reference = LuFactorization::compute(&gpu_for(&a), &a, &opts)
            .unwrap_or_else(|e| panic!("[{tag}] clean run failed: {e}"));

        // Clean checkpointed run: bit-identical, and its crash-point count
        // enumerates every durability boundary a kill could land on.
        let dir = ckpt_dir(&format!("clean-{tag}"));
        let ckpt = CheckpointOptions::new(&dir).every(2);
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute_checkpointed(&gpu, &a, &opts, &ckpt, &gplu_trace::NOOP)
            .unwrap_or_else(|e| panic!("[{tag}] checkpointed run failed: {e}"));
        assert_factors_equal(&f, &reference, &format!("[{tag}] checkpointed vs plain"));
        let n_ordinals = gpu.stats().crash_points;
        assert!(
            n_ordinals >= 4,
            "[{tag}] expected several crash points, got {n_ordinals}"
        );

        for k in 1..=n_ordinals {
            let dir = ckpt_dir(&format!("crash-{tag}-{k}"));
            let ckpt = CheckpointOptions::new(&dir).every(2);

            // Kill the run at ordinal k.
            let gpu = gpu_with_plan(&a, FaultPlan::new().crash_at(k));
            let err =
                LuFactorization::compute_checkpointed(&gpu, &a, &opts, &ckpt, &gplu_trace::NOOP)
                    .expect_err("crash plan must kill the run");
            assert_eq!(
                err,
                GpluError::Crashed { ordinal: k },
                "[{tag}] crash at ordinal {k} surfaced as the wrong error"
            );

            // Resume on a fresh, fault-free device.
            let resumed = LuFactorization::compute_checkpointed(
                &gpu_for(&a),
                &a,
                &opts,
                &CheckpointOptions::new(&dir).every(2).resume(true),
                &gplu_trace::NOOP,
            )
            .unwrap_or_else(|e| panic!("[{tag}] resume after crash at {k} failed: {e}"));
            assert_factors_equal(
                &resumed,
                &reference,
                &format!("[{tag}] resume after crash at ordinal {k}"),
            );
        }
    }
}

/// Crash mid-numeric-phase, resume, and verify the factors actually solve
/// the system — end-to-end, not just bitwise.
#[test]
fn resumed_factors_solve_the_system() {
    let a = random_dominant(150, 4.0, 11 + seed_base());
    let dir = ckpt_dir("solve");
    let ckpt = CheckpointOptions::new(&dir).every(2);
    let opts = LuOptions::default();

    // Find a late ordinal (inside the numeric phase) by counting first.
    let probe = gpu_for(&a);
    LuFactorization::compute_checkpointed(
        &probe,
        &a,
        &opts,
        &CheckpointOptions::new(ckpt_dir("solve-probe")).every(2),
        &gplu_trace::NOOP,
    )
    .expect("probe run");
    let late = probe.stats().crash_points.saturating_sub(1).max(1);

    let gpu = gpu_with_plan(&a, FaultPlan::new().crash_at(late));
    LuFactorization::compute_checkpointed(&gpu, &a, &opts, &ckpt, &gplu_trace::NOOP)
        .expect_err("crash");
    let f = LuFactorization::compute_checkpointed(
        &gpu_for(&a),
        &a,
        &opts,
        &CheckpointOptions::new(&dir).every(2).resume(true),
        &gplu_trace::NOOP,
    )
    .expect("resume");

    let x_true = vec![1.0; a.n_rows()];
    let b = a.spmv(&x_true);
    let x = f.solve(&b).expect("solve");
    assert!(
        gplu::sparse::verify::check_solution(&a, &x, &b, 1e-8),
        "resumed factorization does not solve the original system"
    );
}

/// The blocked engine crash-resumed from a mid-numeric-level snapshot:
/// bit-identical factors *and* an intact BLAS-3 tile count, proving the
/// `gemm_tiles` counter round-trips through the resume codec instead of
/// restarting from zero.
#[test]
fn blocked_resumes_mid_level_with_intact_tile_count() {
    use gplu::sparse::gen::random::banded_dominant;

    // Band 8 fill keeps adjacent columns similar, so supernodes form and
    // the run actually accumulates gemm tiles worth preserving.
    let a = banded_dominant(150, 8, 13 + seed_base());
    let opts = LuOptions {
        format: NumericFormat::SparseBlocked,
        ..Default::default()
    };
    let reference = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("clean blocked run");
    assert!(reference.report.gemm_tiles > 0, "blocks must form");

    // Find a late ordinal (inside the numeric phase) by counting first.
    let probe = gpu_for(&a);
    LuFactorization::compute_checkpointed(
        &probe,
        &a,
        &opts,
        &CheckpointOptions::new(ckpt_dir("blocked-probe")).every(2),
        &gplu_trace::NOOP,
    )
    .expect("probe run");
    let late = probe.stats().crash_points.saturating_sub(1).max(1);

    let dir = ckpt_dir("blocked-crash");
    let ckpt = CheckpointOptions::new(&dir).every(2);
    let gpu = gpu_with_plan(&a, FaultPlan::new().crash_at(late));
    LuFactorization::compute_checkpointed(&gpu, &a, &opts, &ckpt, &gplu_trace::NOOP)
        .expect_err("crash plan must kill the run");

    let resumed = LuFactorization::compute_checkpointed(
        &gpu_for(&a),
        &a,
        &opts,
        &CheckpointOptions::new(&dir).every(2).resume(true),
        &gplu_trace::NOOP,
    )
    .expect("resume");
    assert_factors_equal(&resumed, &reference, "blocked mid-level resume");
    assert_eq!(
        resumed.report.gemm_tiles, reference.report.gemm_tiles,
        "resumed tile count must match the uninterrupted run"
    );
}

/// Corrupting every snapshot on disk must surface as
/// [`GpluError::CheckpointCorrupt`] on resume — typed, no panic, and
/// never a silently wrong factorization.
#[test]
fn corrupted_snapshots_are_a_typed_error() {
    let a = random_dominant(100, 4.0, 23 + seed_base());
    let dir = ckpt_dir("corrupt");
    let opts = LuOptions::default();
    LuFactorization::compute_checkpointed(
        &gpu_for(&a),
        &a,
        &opts,
        &CheckpointOptions::new(&dir).every(2),
        &gplu_trace::NOOP,
    )
    .expect("checkpointed run");

    // Flip one byte deep in every snapshot (past the header so the file
    // still looks like a checkpoint — the checksum must catch it).
    let mut flipped = 0;
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ckpt") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("read snapshot");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).expect("write corrupted snapshot");
        flipped += 1;
    }
    assert!(flipped > 0, "no snapshots found to corrupt");

    let err = LuFactorization::compute_checkpointed(
        &gpu_for(&a),
        &a,
        &opts,
        &CheckpointOptions::new(&dir).every(2).resume(true),
        &gplu_trace::NOOP,
    )
    .expect_err("resume from corrupted snapshots must fail");
    assert!(
        matches!(err, GpluError::CheckpointCorrupt(_)),
        "expected CheckpointCorrupt, got {err:?}"
    );
}

/// Resuming someone else's checkpoint directory is a typed mismatch.
#[test]
fn resume_with_mismatched_matrix_is_a_typed_error() {
    let a = random_dominant(90, 4.0, 31 + seed_base());
    let b = random_dominant(90, 4.0, 32 + seed_base());
    let dir = ckpt_dir("mismatch");
    let opts = LuOptions::default();
    LuFactorization::compute_checkpointed(
        &gpu_for(&a),
        &a,
        &opts,
        &CheckpointOptions::new(&dir).every(2),
        &gplu_trace::NOOP,
    )
    .expect("checkpointed run");

    let err = LuFactorization::compute_checkpointed(
        &gpu_for(&b),
        &b,
        &opts,
        &CheckpointOptions::new(&dir).every(2).resume(true),
        &gplu_trace::NOOP,
    )
    .expect_err("resume against the wrong matrix must fail");
    assert!(
        matches!(err, GpluError::CheckpointMismatch(_)),
        "expected CheckpointMismatch, got {err:?}"
    );
}

/// A cadence of zero can never cut a snapshot; the options reject it as a
/// typed configuration error before any work runs.
#[test]
fn zero_cadence_is_rejected() {
    let a = random_dominant(60, 4.0, 41 + seed_base());
    let err = LuFactorization::compute_checkpointed(
        &gpu_for(&a),
        &a,
        &LuOptions::default(),
        &CheckpointOptions::new(ckpt_dir("zero")).every(0),
        &gplu_trace::NOOP,
    )
    .expect_err("cadence 0 must be rejected");
    assert!(
        matches!(err, GpluError::Checkpoint(_)),
        "expected Checkpoint config error, got {err:?}"
    );
}
