//! Service equivalence suite: the `gplu-server` solver service must be a
//! *transparent* accelerator.
//!
//! The contract, in order of importance:
//!
//! 1. **bit-identity** — whatever tier serves a job (cold, warm
//!    refactorization, cached factors), the factor values are
//!    bit-identical to a single-threaded cold [`LuFactorization::compute`]
//!    of the same `(pattern, values)` pair;
//! 2. **eviction safety** — an LRU eviction under a starved cache budget
//!    never corrupts a job in flight (entries are `Arc`-shared);
//! 3. **typed degradation** — backpressure, deadlines and cancellation
//!    surface as [`GpluError::QueueFull`] / [`GpluError::DeadlineExceeded`]
//!    / [`GpluError::Cancelled`], never as panics or hangs;
//! 4. **accounting** — plan construction happens once per distinct hot
//!    pattern, and the service report's sections stay self-consistent.

use gplu::prelude::*;
use gplu::server::{generate_workload, ExecTier, JobHandle, ServiceReport, WorkloadParams};
use gplu::sparse::gen::circuit::{circuit, CircuitParams};
use gplu::sparse::gen::random::random_dominant;
use gplu::sparse::verify::check_solution;
use gplu::sparse::Csr;
use gplu::trace::JsonValue;

/// Deterministic value drift on a fixed pattern (the service workload's
/// perturbation shape).
fn drift(base: &Csr, version: u64) -> Csr {
    let mut m = base.clone();
    for (k, v) in m.vals.iter_mut().enumerate() {
        let wob = ((k as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(version.wrapping_mul(7919))
            % 97) as f64;
        *v *= 1.0 + wob / 1000.0;
    }
    m
}

/// Single-threaded cold reference for one `(pattern, values)` pair.
fn cold_reference(a: &Csr) -> LuFactorization {
    let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
    LuFactorization::compute(&gpu, a, &LuOptions::default()).expect("cold reference")
}

#[test]
fn every_tier_is_bit_identical_to_a_cold_factorization() {
    // 3 hot patterns x 4 value versions submitted concurrently (version 0
    // twice), then a drained-queue epilogue that pins the warm and
    // cached-factors tiers deterministically.
    let patterns: Vec<Csr> = (0..3u64)
        .map(|s| {
            circuit(&CircuitParams {
                n: 250,
                nnz_per_row: 6.0,
                seed: 40 + s,
                ..Default::default()
            })
        })
        .collect();

    let svc = SolverService::start(ServiceConfig::default());
    // Prime each pattern with a completed cold job first: concurrent
    // same-pattern cold misses each build a plan (first insert wins, the
    // rest are discarded), which is safe but makes `plans_built`
    // nondeterministic. After priming, every later job must hit.
    let mut tiers = Vec::new();
    let mut handles: Vec<(usize, u64, JobHandle)> = Vec::new();
    for (pi, base) in patterns.iter().enumerate() {
        let h = svc
            .submit(JobSpec::new(drift(base, 0), JobKind::Factorize).hot())
            .expect("submit");
        handles.push((pi, 0, h));
    }
    for (pi, version, h) in handles.drain(..) {
        let r = h.wait().expect("priming job completes");
        let reference = cold_reference(&drift(&patterns[pi], version));
        assert_eq!(reference.lu.vals, r.factorization.lu.vals);
        tiers.push(r.tier);
    }
    for (pi, base) in patterns.iter().enumerate() {
        for version in [1u64, 2, 3, 0] {
            let a = drift(base, version);
            let h = svc
                .submit(JobSpec::new(a, JobKind::Factorize).hot())
                .expect("submit");
            handles.push((pi, version, h));
        }
    }

    for (pi, version, h) in handles {
        let r = h.wait().expect("job completes");
        let reference = cold_reference(&drift(&patterns[pi], version));
        assert_eq!(
            reference.lu.vals, r.factorization.lu.vals,
            "pattern {pi} v{version} served {:?}: factors must be bit-identical \
             to the single-threaded cold pipeline",
            r.tier
        );
        tiers.push(r.tier);
    }

    // With the queue drained, land one job on each remaining tier
    // deterministically: a fresh value version refactorizes warm, and an
    // exact duplicate must then be served from cached factors. (The
    // concurrent duplicate above races the other versions for the cache
    // entry's latest slot, so its tier is timing-dependent.)
    let fresh = drift(&patterns[0], 9);
    let warm = svc
        .submit(JobSpec::new(fresh.clone(), JobKind::Factorize).hot())
        .expect("submit")
        .wait()
        .expect("fresh version completes");
    assert_eq!(warm.tier, ExecTier::Warm, "fresh values must refactorize");
    let dup = svc
        .submit(JobSpec::new(fresh, JobKind::Factorize).hot())
        .expect("submit")
        .wait()
        .expect("duplicate completes");
    assert_eq!(
        dup.tier,
        ExecTier::CachedSolve,
        "duplicate submissions must be served from cached factors"
    );
    assert_eq!(warm.factorization.lu.vals, dup.factorization.lu.vals);
    tiers.push(warm.tier);
    tiers.push(dup.tier);

    // The mix must actually exercise the cache, not just pass trivially.
    assert!(tiers.contains(&ExecTier::Warm), "no warm job ran");
    let stats = svc.stats();
    assert_eq!(
        stats.plans_built,
        patterns.len() as u64,
        "exactly one plan per distinct pattern"
    );
    svc.shutdown();
}

#[test]
fn blocked_format_refactorizes_warm_without_re_blocking() {
    use gplu::sparse::gen::random::banded_dominant;
    use gplu::trace::Recorder;

    // Band-8 fill keeps adjacent columns similar, so the blocking pass
    // finds supernodes and the blocked engine actually runs BLAS-3 tiles.
    let base = banded_dominant(250, 8, 81);
    let opts = LuOptions {
        format: NumericFormat::SparseBlocked,
        ..Default::default()
    };
    let gpu = || Gpu::new(GpuConfig::v100_symbolic_profile(base.n_rows(), base.nnz()));

    // Plan-level proof: the captured BlockPlan is replayed on the warm
    // path — the trace must show no `phase.block_detect` (and no symbolic
    // or levelize) span, yet the warm run still executes gemm tiles and
    // reproduces the cold blocked factors bit-for-bit.
    let cold = LuFactorization::compute(&gpu(), &base, &opts).expect("cold blocked");
    assert!(cold.report.gemm_tiles > 0, "band-8 fill must form blocks");
    let plan = cold.refactor_plan(&base, &opts).expect("plan");
    let drifted = drift(&base, 1);
    let rec = Recorder::new();
    let warm = plan
        .refactorize_traced(&gpu(), &drifted, &rec)
        .expect("warm blocked");
    let spans: Vec<&str> = rec.into_events().into_iter().map(|e| e.name).collect();
    assert!(
        !spans.contains(&"phase.block_detect"),
        "warm path must replay the captured plan, not re-scan: {spans:?}"
    );
    assert!(warm.report.gemm_tiles > 0, "warm run must stay blocked");
    let cold_drifted = LuFactorization::compute(&gpu(), &drifted, &opts).expect("cold drifted");
    assert_eq!(warm.lu.vals, cold_drifted.lu.vals);

    // Service-level proof: a hot SparseBlocked job lands on the warm tier
    // and stays bit-identical to the cold blocked pipeline.
    let svc = SolverService::start(ServiceConfig::default());
    let blocked_spec = |a: Csr| {
        let mut s = JobSpec::new(a, JobKind::Factorize).hot();
        s.opts = opts.clone();
        s
    };
    let h = svc.submit(blocked_spec(drift(&base, 0))).expect("submit");
    h.wait().expect("priming job");
    let h = svc.submit(blocked_spec(drift(&base, 2))).expect("submit");
    let r = h.wait().expect("warm job");
    assert_eq!(r.tier, ExecTier::Warm, "same hot pattern must serve warm");
    assert!(r.factorization.report.gemm_tiles > 0);
    let reference = LuFactorization::compute(&gpu(), &drift(&base, 2), &opts).expect("reference");
    assert_eq!(reference.lu.vals, r.factorization.lu.vals);
    svc.shutdown();
}

#[test]
fn eviction_under_a_starved_budget_never_corrupts_results() {
    // Budget fits roughly one entry, so the 4 interleaved patterns evict
    // each other constantly while their jobs are still in flight.
    let patterns: Vec<Csr> = (0..4u64)
        .map(|s| random_dominant(200, 4.0, 50 + s))
        .collect();
    let plan_bytes = {
        let f = cold_reference(&patterns[0]);
        f.refactor_plan(&patterns[0], &LuOptions::default())
            .expect("plan")
            .approx_bytes()
    };
    let svc = SolverService::start(ServiceConfig {
        workers: 4,
        queue_cap: 64,
        cache_budget_bytes: plan_bytes + plan_bytes / 2,
        ..Default::default()
    });

    let mut handles = Vec::new();
    for round in 0..3u64 {
        for (pi, base) in patterns.iter().enumerate() {
            let a = drift(base, round);
            let h = svc
                .submit(JobSpec::new(a, JobKind::Factorize).hot())
                .expect("submit");
            handles.push((pi, round, h));
        }
    }
    for (pi, round, h) in handles {
        let r = h.wait().expect("job completes despite evictions");
        let reference = cold_reference(&drift(&patterns[pi], round));
        assert_eq!(
            reference.lu.vals, r.factorization.lu.vals,
            "pattern {pi} round {round}: eviction must never corrupt a result"
        );
    }
    let counters = svc.cache_counters();
    assert!(
        counters.evictions > 0,
        "budget was sized to force evictions, got none (insertions {})",
        counters.insertions
    );
    assert!(
        svc.cache().used_bytes() <= svc.cache_budget(),
        "cache must stay within budget"
    );
    svc.shutdown();
}

#[test]
fn backpressure_deadlines_and_cancellation_are_typed() {
    // One worker, one queue slot: the first (slow) job occupies the
    // worker, the second fills the queue, the third must bounce.
    let svc = SolverService::start(ServiceConfig {
        workers: 1,
        queue_cap: 1,
        cache_budget_bytes: 16 << 20,
        ..Default::default()
    });
    let slow = random_dominant(700, 6.0, 60);
    let running = svc
        .submit(JobSpec::new(slow.clone(), JobKind::Factorize))
        .expect("first job");

    let small = random_dominant(60, 3.0, 61);
    let mut queued = None;
    let mut saw_queue_full = false;
    for _ in 0..200 {
        match svc.submit(JobSpec::new(small.clone(), JobKind::Factorize)) {
            Ok(h) if queued.is_none() => queued = Some(h),
            Ok(h) => {
                // The worker drained the queue mid-test; keep the newest
                // handle so shutdown stays clean, and keep probing.
                let _ = queued.replace(h).map(|old| old.wait());
            }
            Err(GpluError::QueueFull { depth, cap }) => {
                assert_eq!(cap, 1);
                assert!(depth >= 1);
                saw_queue_full = true;
                break;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(saw_queue_full, "a 1-slot queue must reject under load");

    // A zero deadline has always expired by the time a worker dequeues.
    let dead = svc.submit(JobSpec::new(small.clone(), JobKind::Factorize).with_deadline_ns(0));
    if let Ok(h) = dead {
        match h.wait() {
            Err(GpluError::DeadlineExceeded { .. }) => {}
            other => panic!("zero-deadline job must be dropped, got {other:?}"),
        }
    }

    let _ = running.wait();
    if let Some(h) = queued {
        let _ = h.wait();
    }

    // Cancellation: occupy the worker again, cancel a queued job.
    let running = svc
        .submit(JobSpec::new(slow, JobKind::Factorize))
        .expect("slow job");
    if let Ok(victim) = svc.submit(JobSpec::new(small, JobKind::Factorize)) {
        victim.cancel();
        match victim.wait() {
            Err(GpluError::Cancelled) => {}
            // Lost the race: the worker started it before the flag landed.
            Ok(_) => {}
            Err(e) => panic!("cancelled job must not fail with {e}"),
        }
    }
    let _ = running.wait();

    let stats = svc.stats();
    assert!(stats.rejected > 0, "rejections must be counted");
    svc.shutdown();
}

#[test]
fn solve_jobs_return_checked_solutions_from_every_tier() {
    let base = circuit(&CircuitParams {
        n: 220,
        nnz_per_row: 6.0,
        seed: 70,
        ..Default::default()
    });
    let svc = SolverService::start(ServiceConfig::default());
    // Same pattern three times: cold, warm, cached.
    for version in [0u64, 1, 1] {
        let a = drift(&base, version);
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|r| a.spmv(&vec![1.0 + r as f64; a.n_rows()]))
            .collect();
        let h = svc
            .submit(JobSpec::new(a.clone(), JobKind::Solve { rhs: rhs.clone() }).hot())
            .expect("submit");
        let r = h.wait().expect("solve job");
        let xs = r.solutions.expect("solve jobs return solutions");
        assert_eq!(xs.len(), rhs.len());
        for (x, b) in xs.iter().zip(&rhs) {
            assert!(
                check_solution(&a, x, b, 1e-8),
                "tier {:?} solution must satisfy the submitted system",
                r.tier
            );
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.completed, 3);
    assert!(stats.cached_solve >= 1, "the duplicate values must hit");
    svc.shutdown();
}

#[test]
fn stress_workload_sustains_the_hit_rate_and_a_consistent_report() {
    let specs = generate_workload(&WorkloadParams {
        jobs: 60,
        hot_patterns: 4,
        hot_fraction: 0.8,
        value_versions: 5,
        solve_fraction: 0.3,
        hard_fraction: 0.0,
        fault_every: 0,
        hot_n: 150,
        cold_n: 100,
        tenants: 4,
        seed: 99,
    });
    let svc = SolverService::start(ServiceConfig::default());
    let handles: Vec<JobHandle> = specs
        .into_iter()
        .map(|s| svc.submit(s).expect("cap 64 fits the drained queue"))
        .collect();
    for h in handles {
        h.wait().expect("fault-free workload must complete");
    }

    let report = ServiceReport::capture(&svc);
    let stats = &report.stats;
    assert_eq!(stats.completed, 60);
    assert_eq!(
        stats.cold + stats.warm + stats.warm_host + stats.warm_disk + stats.cached_solve,
        stats.completed
    );
    assert!(
        stats.hot_hit_rate() >= 0.8,
        "hot traffic must mostly hit the cache, got {:.3}",
        stats.hot_hit_rate()
    );

    // The exported JSON must carry every section telemetry_check expects.
    let doc = report.to_json();
    for section in ["jobs", "cache", "latency", "queue", "faults"] {
        assert!(doc.get(section).is_some(), "report must have {section}");
    }
    assert_eq!(
        doc.get("jobs")
            .and_then(|j| j.get("completed"))
            .and_then(JsonValue::as_u64),
        Some(60)
    );
    svc.shutdown();
}
