//! Chaos suite: hundreds of seeded fault schedules driven through the
//! full pipeline.
//!
//! The contract under fault injection is three-way:
//!
//! 1. if the pipeline reports success, the factors are **bit-identical**
//!    to a fault-free reference run (recovery never silently changes the
//!    answer), and any fired fault left a trace in the recovery log;
//! 2. if the pipeline cannot recover, it returns a typed [`GpluError`];
//! 3. it never panics.
//!
//! Every case is deterministic: the proptest shim derives inputs from the
//! case index, and `GPLU_CHAOS_SEED` (the CI seed matrix) offsets the
//! fault-plan seed so each CI shard explores a different schedule set.

use gplu::prelude::*;
use gplu::sim::FaultPlan;
use gplu::sparse::gen::random::random_dominant;
use proptest::prelude::*;

/// Offset applied to every fault-plan seed, taken from `GPLU_CHAOS_SEED`
/// (default 0). Lets CI run disjoint schedule sets without code changes.
fn seed_base() -> u64 {
    std::env::var("GPLU_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

const ENGINES: [SymbolicEngine; 4] = [
    SymbolicEngine::Ooc,
    SymbolicEngine::OocDynamic,
    SymbolicEngine::UmNoPrefetch,
    SymbolicEngine::UmPrefetch,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn seeded_fault_schedules_recover_exactly_or_fail_typed(
        n in 40usize..140,
        mseed in 0u64..10_000,
        fseed in 0u64..1_000_000,
        engine_idx in 0usize..4,
    ) {
        let a = random_dominant(n, 4.0, mseed);
        let opts = LuOptions {
            symbolic: ENGINES[engine_idx],
            ..Default::default()
        };

        // Fault-free reference on an identical device.
        let clean = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        let reference = LuFactorization::compute(&clean, &a, &opts);
        prop_assert!(reference.is_ok(), "clean run failed: {:?}", reference.err());
        let reference = reference.expect("checked above");

        let plan = FaultPlan::from_seed(fseed + seed_base().wrapping_mul(1_000_003));
        let gpu = Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            plan,
        );
        // Reaching either arm without a panic is itself the core property.
        match LuFactorization::compute(&gpu, &a, &opts) {
            Ok(f) => {
                prop_assert_eq!(
                    &f.lu.vals,
                    &reference.lu.vals,
                    "recovered factors differ from the fault-free run"
                );
                prop_assert_eq!(
                    &f.lu.col_ptr,
                    &reference.lu.col_ptr,
                    "recovered fill pattern differs from the fault-free run"
                );
                let stats = gpu.stats();
                // A squeeze shrinks capacity without failing any request,
                // so only hard faults (OOM, launch) must leave a trace.
                if stats.injected_oom + stats.injected_launch_faults > 0 {
                    prop_assert!(
                        !f.report.recovery.is_empty(),
                        "{} oom + {} launch faults fired but the recovery log is empty",
                        stats.injected_oom,
                        stats.injected_launch_faults
                    );
                }
            }
            Err(e) => {
                // Typed, displayable error — never a panic, never a wrong answer.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn transient_oom_storms_still_converge_on_ooc(
        n in 50usize..120,
        mseed in 0u64..10_000,
        alloc in 1u64..12,
    ) {
        // Single transient OOM at a chosen allocation ordinal: the OOC
        // engines must absorb it (backoff or stream) and reproduce the
        // reference bit-for-bit.
        let a = random_dominant(n, 4.0, mseed);
        let opts = LuOptions {
            symbolic: SymbolicEngine::Ooc,
            ..Default::default()
        };
        let clean = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        let reference =
            LuFactorization::compute(&clean, &a, &opts).expect("clean run must succeed");

        let gpu = Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            FaultPlan::new().oom_on_alloc(alloc),
        );
        match LuFactorization::compute(&gpu, &a, &opts) {
            Ok(f) => {
                prop_assert_eq!(&f.lu.vals, &reference.lu.vals);
                if gpu.stats().injected_oom > 0 {
                    prop_assert!(!f.report.recovery.is_empty());
                }
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
