//! Multi-device fleet suite: sharded execution must be invisible in the
//! results.
//!
//! The contract:
//!
//! 1. **bit-identity** — a `--devices N` run shards symbolic fill
//!    counting by source-row range and the numeric phase by column range
//!    per level, but the factor it produces (pattern, permutations, and
//!    every value bit) is identical to the single-device pipeline for
//!    every symbolic engine, numeric format, and fleet size;
//! 2. **fault isolation** — a `dev=K:` fault plan kills exactly that
//!    device; its shards reshard onto the survivors, the run completes
//!    bit-identically, and the recovery log records the
//!    [`RecoveryAction::DeviceLost`];
//! 3. **locality scheduling** — the service routes a hot pattern back to
//!    the device that built its plan, so per-device hit rates stay
//!    meaningful.
//!
//! Every case is deterministic: the proptest shim derives inputs from
//! fixed seeds.

use gplu::core::RecoveryAction;
use gplu::prelude::*;
use gplu::server::ExecTier;
use gplu::sparse::gen::circuit::{circuit, CircuitParams};
use gplu::sparse::gen::random::{banded_dominant, random_dominant};
use gplu::sparse::Coo;
use proptest::prelude::*;

fn gpu_for(a: &Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

fn fleet_for(a: &Csr, devices: usize) -> DeviceFleet {
    DeviceFleet::new(
        devices,
        GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
    )
}

/// Block-diagonal matrix of independent banded chains — wide levels, so
/// every device's shard is non-empty.
fn block_banded(blocks: usize, m: usize, band: usize, seed: u64) -> Csr {
    let n = blocks * m;
    let mut coo = Coo::new(n, n);
    for b in 0..blocks {
        let base = b * m;
        let block = banded_dominant(m, band, seed.wrapping_add(b as u64));
        for i in 0..m {
            for (j, v) in block.row_iter(i) {
                coo.push(base + i, base + j, v);
            }
        }
    }
    gplu::sparse::gen::assemble_dominant(coo, 1.0)
}

fn assert_bit_identical(single: &LuFactorization, fleet: &LuFactorization, label: &str) {
    assert_eq!(single.lu.col_ptr, fleet.lu.col_ptr, "{label}: fill pattern");
    assert_eq!(single.lu.row_idx, fleet.lu.row_idx, "{label}: fill pattern");
    let identical = single
        .lu
        .vals
        .iter()
        .zip(&fleet.lu.vals)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(identical, "{label}: factor values diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core invariant: sharding is a pricing concern, never a numerical
    /// one — any engine x format x fleet size reproduces the
    /// single-device bits.
    #[test]
    fn fleet_is_bit_identical_for_every_engine_and_count(
        seed in 0u64..1000,
        n in 80usize..240,
        devices_idx in 0usize..4,
        engine_idx in 0usize..4,
        format_idx in 0usize..5,
    ) {
        let devices = [1usize, 2, 4, 8][devices_idx];
        let engine = [
            SymbolicEngine::Ooc,
            SymbolicEngine::OocDynamic,
            SymbolicEngine::UmNoPrefetch,
            SymbolicEngine::UmPrefetch,
        ][engine_idx];
        let format = [
            NumericFormat::Auto,
            NumericFormat::Dense,
            NumericFormat::Sparse,
            NumericFormat::SparseMerge,
            NumericFormat::SparseBlocked,
        ][format_idx];
        let a = random_dominant(n, 4.0, seed);
        let opts = LuOptions {
            symbolic: engine,
            format,
            ..LuOptions::default()
        };
        let single = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("single");
        let fleet = fleet_for(&a, devices);
        let sharded = LuFactorization::compute_fleet(&fleet, &a, &opts).expect("fleet");
        assert_bit_identical(
            &single,
            &sharded,
            &format!("{engine:?}/{format:?} x {devices} devices"),
        );
        let fr = sharded.report.fleet.as_ref().expect("fleet report");
        prop_assert_eq!(fr.devices, devices);
        prop_assert!(fr.dead.is_empty());
        // A real fleet must price the level-barrier exchange; one device
        // must not.
        prop_assert_eq!(fr.exchanges > 0, devices > 1);
    }
}

#[test]
fn fleet_solves_the_system_it_factorized() {
    let a = circuit(&CircuitParams {
        n: 400,
        nnz_per_row: 6.0,
        seed: 9,
        ..Default::default()
    });
    let fleet = fleet_for(&a, 4);
    let f = LuFactorization::compute_fleet(&fleet, &a, &LuOptions::default()).expect("fleet");
    let x_true = vec![1.0; a.n_rows()];
    let b = a.spmv(&x_true);
    let x = f.solve(&b).expect("solve");
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-8, "solve error {err}");
}

#[test]
fn dead_device_reshards_onto_survivors_bit_identically() {
    // Wide levels so device 1's shard is never empty when the fault fires.
    let a = block_banded(64, 12, 4, 77);
    let opts = LuOptions::default();
    let single = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("single");

    let plans = FaultPlan::parse_fleet("dev=1:oom:alloc=1:persistent", 4).expect("plans");
    let cfg = GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz());
    let fleet = DeviceFleet::with_fault_plans(4, cfg, CostModel::default(), &plans);
    let f = LuFactorization::compute_fleet(&fleet, &a, &opts).expect("fleet survives the death");

    assert_bit_identical(&single, &f, "post-death reshard");
    let fr = f.report.fleet.as_ref().expect("fleet report");
    assert_eq!(fr.dead, vec![1], "exactly the targeted device dies");
    assert!(
        fr.resharded_rows + fr.resharded_cols > 0,
        "the dead device's shard must be re-run on survivors"
    );
    let lost: Vec<_> = f
        .report
        .recovery
        .events()
        .iter()
        .filter_map(|e| match e.action {
            RecoveryAction::DeviceLost { device, resharded } => Some((device, resharded)),
            _ => None,
        })
        .collect();
    assert!(
        lost.iter()
            .any(|&(device, resharded)| device == 1 && resharded > 0),
        "recovery log must carry the DeviceLost entry, got {lost:?}"
    );
}

#[test]
fn whole_fleet_fault_plans_broadcast_without_device_prefix() {
    // An unprefixed spec reaches every device, so it kills the whole
    // fleet — there is no survivor to reshard onto and the run is
    // terminal. (If the spec had only reached one device, the reshard
    // path above would have absorbed it.)
    let a = block_banded(32, 12, 4, 78);
    let plans = FaultPlan::parse_fleet("oom:alloc=2", 2).expect("plans");
    assert_eq!(plans.len(), 2);
    let cfg = GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz());
    let fleet = DeviceFleet::with_fault_plans(2, cfg, CostModel::default(), &plans);
    let err = LuFactorization::compute_fleet(&fleet, &a, &LuOptions::default())
        .expect_err("whole-fleet death is terminal");
    assert!(
        matches!(
            err,
            GpluError::DeviceOom { .. } | GpluError::RecoveryExhausted { .. }
        ),
        "unexpected error: {err:?}"
    );
}

/// Deterministic value drift on a fixed pattern.
fn drift(base: &Csr, version: u64) -> Csr {
    let mut m = base.clone();
    for (k, v) in m.vals.iter_mut().enumerate() {
        let wob = ((k as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(version.wrapping_mul(7919))
            % 97) as f64;
        *v *= 1.0 + wob / 1000.0;
    }
    m
}

#[test]
fn service_routes_hot_patterns_to_the_device_holding_their_plan() {
    let base = circuit(&CircuitParams {
        n: 250,
        nnz_per_row: 6.0,
        seed: 61,
        ..Default::default()
    });
    let svc = SolverService::start(ServiceConfig {
        workers: 1,
        devices: 4,
        ..Default::default()
    });

    // Cold job homes the pattern on some device (not hot-flagged, so it
    // doesn't count against the hot hit rate it is about to enable).
    let r = svc
        .submit(JobSpec::new(drift(&base, 0), JobKind::Factorize))
        .expect("submit")
        .wait()
        .expect("cold job");
    assert_eq!(r.tier, ExecTier::Cold);
    let home = r.device;

    // Every later refactorization of the pattern lands on the same device
    // and hits its plan.
    for version in 1..=3u64 {
        let r = svc
            .submit(JobSpec::new(drift(&base, version), JobKind::Factorize).hot())
            .expect("submit")
            .wait()
            .expect("hot job");
        assert_ne!(r.tier, ExecTier::Cold, "v{version} must hit the plan");
        assert_eq!(r.device, home, "v{version} must follow the plan's home");
    }

    let stats = svc.stats();
    let d = &stats.devices[home];
    assert_eq!(d.jobs, 4, "all four jobs landed on the home device");
    assert!(
        (d.hot_hit_rate() - 1.0).abs() < f64::EPSILON,
        "home device served every hot job from its plan"
    );
    assert!(d.plan_bytes > 0, "the cold build charged the home arena");
    for (k, other) in stats.devices.iter().enumerate() {
        if k != home {
            assert_eq!(other.jobs, 0, "device {k} must stay idle");
        }
    }
    svc.shutdown();
}
