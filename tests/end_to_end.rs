//! Cross-crate integration: the full pipeline against every substrate,
//! with property-based checks on solve correctness.

use gplu::prelude::*;
use gplu::sparse::gen::random::{banded_dominant, random_dominant};
use gplu::sparse::verify::{check_solution, residual_probe};
use proptest::prelude::*;

fn gpu_for(a: &gplu::sparse::Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

#[test]
fn pipeline_factors_and_solves_random_system() {
    let a = random_dominant(400, 4.0, 2024);
    let f = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
    assert!(residual_probe(&f.preprocessed, &f.lu, 4) < 1e-9);

    let x_true: Vec<f64> = (0..400).map(|i| (i as f64).sin()).collect();
    let b = a.spmv(&x_true);
    let x = f.solve(&b).expect("solve");
    assert!(check_solution(&a, &x, &b, 1e-8));
}

#[test]
fn pipeline_handles_banded_system() {
    let a = banded_dominant(600, 5, 7);
    let f = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
    let b = a.spmv(&vec![1.0; 600]);
    let x = f.solve(&b).expect("solve");
    assert!(check_solution(&a, &x, &b, 1e-8));
}

#[test]
fn repeated_solves_reuse_factors() {
    let a = random_dominant(200, 4.0, 88);
    let f = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
    for seed in 0..5u64 {
        let x_true: Vec<f64> = (0..200)
            .map(|i| ((i as u64 ^ seed) % 11) as f64 - 5.0)
            .collect();
        let b = a.spmv(&x_true);
        let x = f.solve(&b).expect("solve");
        assert!(check_solution(&a, &x, &b, 1e-8), "rhs seed {seed}");
    }
}

#[test]
fn suite_analog_smoke_every_family() {
    // One matrix per generator family through the full pipeline.
    use gplu::sparse::gen::suite::{large_suite, paper_suite};
    let picks = [
        paper_suite()
            .into_iter()
            .find(|e| e.abbr == "OT2")
            .expect("circuit family"),
        paper_suite()
            .into_iter()
            .find(|e| e.abbr == "WI")
            .expect("mesh family"),
        large_suite().into_iter().next().expect("planar family"),
    ];
    for entry in picks {
        let a = entry.generate(8192);
        let f =
            LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("pipeline");
        assert!(
            residual_probe(&f.preprocessed, &f.lu, 3) < 1e-8,
            "{}: residual too large",
            entry.abbr
        );
    }
}

#[test]
fn device_memory_is_clean_after_pipeline() {
    let a = random_dominant(300, 4.0, 5);
    let gpu = gpu_for(&a);
    let _ = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("pipeline");
    assert_eq!(gpu.mem.used_bytes(), 0, "pipeline leaked device memory");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any diagonally dominant matrix, the pipeline's factors solve
    /// A x = b to high accuracy.
    #[test]
    fn prop_pipeline_solves(
        n in 20usize..120,
        density in 2.0f64..6.0,
        seed in 0u64..500,
    ) {
        let a = random_dominant(n, density, seed);
        let f = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default())
            .expect("pipeline");
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = a.spmv(&x_true);
        let x = f.solve(&b).expect("solve");
        prop_assert!(check_solution(&a, &x, &b, 1e-7));
    }

    /// Both numeric formats produce bit-identical factors on any input.
    #[test]
    fn prop_formats_agree(
        n in 20usize..100,
        seed in 0u64..500,
    ) {
        let a = random_dominant(n, 3.5, seed);
        let dense = LuFactorization::compute(
            &gpu_for(&a),
            &a,
            &LuOptions { format: NumericFormat::Dense, ..Default::default() },
        ).expect("dense");
        let sparse = LuFactorization::compute(
            &gpu_for(&a),
            &a,
            &LuOptions { format: NumericFormat::Sparse, ..Default::default() },
        ).expect("sparse");
        prop_assert_eq!(dense.lu.vals, sparse.lu.vals);
    }
}
